//! VIProf session orchestration: one-stop start → attach VM → run →
//! stop → report.

use crate::agent::{MapFaultStats, MapFaults, VmAgent};
use crate::callgraph::CallGraph;
use crate::engine::ResolutionEngine;
use crate::error::ViprofError;
use crate::faults::FaultPlan;
use crate::live::{LiveEngine, LiveSpec};
use crate::recover::RecoveryReport;
use crate::registry::{JitRegistry, SharedRegistry};
use crate::resolve::{IncarnationSummary, ResolutionQuality, ResolveOptions, ViprofResolver};
use crate::runtime::ViprofExtension;
use oprofile::report::{Report, ReportOptions};
use oprofile::{
    DaemonFaultStats, DriverFaultStats, DriverStats, OpConfig, Oprofile, SampleDb,
    SupervisorConfig, SupervisorStats,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sim_cpu::CostModel;
use sim_os::{crc32, Kernel, Machine, Vfs};
use std::collections::BTreeMap;
use std::sync::Arc;
use viprof_telemetry::{
    names, HealthReport, LineageTable, Telemetry, TelemetrySnapshot, TraceSnapshot,
};

/// Builder for a VIProf session — the single way to express every
/// start-time combination that used to be spread over
/// `start`/`start_with_faults` and manual `OpConfig::with_journal`/
/// `with_supervisor` chains:
///
/// ```ignore
/// let vp = Viprof::builder()
///     .config(OpConfig::time_at(20_000))
///     .journal(true)
///     .faults(&plan)
///     .supervised(true)
///     .start(&mut machine);
/// ```
///
/// Unset toggles inherit whatever the [`OpConfig`] already says, so
/// `Viprof::builder().config(c).start(m)` is exactly the old
/// `Viprof::start(m, c)`.
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    config: OpConfig,
    plan: Option<FaultPlan>,
    journal: Option<bool>,
    supervised: Option<bool>,
    live: Option<LiveSpec>,
}

impl SessionBuilder {
    /// The base profiler configuration (events, periods, cost model).
    pub fn config(mut self, config: OpConfig) -> SessionBuilder {
        self.config = config;
        self
    }

    /// Toggle crash-consistent journaling (daemon sample batches + VM
    /// agent map writes). Unset → inherit `config.journal`.
    pub fn journal(mut self, on: bool) -> SessionBuilder {
        self.journal = Some(on);
        self
    }

    /// Run under a fault schedule: the plan's driver and daemon
    /// injectors are wired into the kernel-side pipeline, its map-write
    /// injector into every agent the session builds.
    pub fn faults(mut self, plan: &FaultPlan) -> SessionBuilder {
        self.plan = Some(plan.clone());
        self
    }

    /// Toggle daemon supervision. `true` uses the fault plan's
    /// seeded [`SupervisorConfig`] when a plan is set (the default
    /// config otherwise); `false` forces supervision off. Unset →
    /// inherit `config.supervisor`.
    pub fn supervised(mut self, on: bool) -> SessionBuilder {
        self.supervised = Some(on);
        self
    }

    /// Maintain a [`LiveEngine`] alongside the session: the daemon
    /// feeds it every drained batch, and
    /// [`Viprof::live_snapshot`] produces a full [`SessionReport`]
    /// at any point mid-run. The engine shares the session's
    /// telemetry registry and mirrors its admission cap.
    pub fn live(mut self, spec: LiveSpec) -> SessionBuilder {
        self.live = Some(spec);
        self
    }

    /// Start the session on `machine`. Panics on an unstartable
    /// configuration (the profiler would otherwise never fire a single
    /// NMI); use [`SessionBuilder::try_start`] to get the typed error
    /// instead.
    pub fn start(self, machine: &mut Machine) -> Viprof {
        self.try_start(machine)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`SessionBuilder::start`] with the config checked first: an
    /// unstartable configuration comes back as
    /// [`ViprofError::InvalidConfig`] *before* any counter is
    /// programmed or any machine state touched.
    pub fn try_start(self, machine: &mut Machine) -> Result<Viprof, ViprofError> {
        let mut config = self.config;
        if let Some(journal) = self.journal {
            config.journal = journal;
        }
        match self.supervised {
            Some(true) => {
                let sup: SupervisorConfig = self
                    .plan
                    .as_ref()
                    .map(|p| p.supervisor_config())
                    .unwrap_or_default();
                config.supervisor = Some(sup);
            }
            Some(false) => config.supervisor = None,
            None => {}
        }
        let (config, agent_faults) = match &self.plan {
            Some(plan) => (plan.apply_to(config), plan.agent_faults()),
            None => (config, None),
        };
        config.validate().map_err(ViprofError::InvalidConfig)?;
        Ok(Viprof::start_inner(machine, config, agent_faults, self.live))
    }
}

/// What [`Viprof::make_report`] should produce.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ReportSpec {
    /// Row shaping: event columns, percent floor, row cap.
    pub options: ReportOptions,
    /// Run the journal-replay recovery pass before resolving, and
    /// report what it salvaged.
    pub recover: bool,
    /// Resolution shards; `0` or `1` = single-threaded. The report is
    /// bit-identical for every value.
    pub threads: usize,
    /// Deterministic shard-poison injection (fault-matrix tests): the
    /// named pid's buckets panic mid-resolution, exercising the
    /// engine's catch-unwind fallback and quarantine accounting.
    pub poison: Option<crate::engine::ShardPoison>,
    /// Build the causal lineage table and resolve-side trace (on by
    /// default; the bench overhead gate turns it off to measure the
    /// flat path).
    pub trace: bool,
}

impl Default for ReportSpec {
    fn default() -> ReportSpec {
        ReportSpec {
            options: ReportOptions::default(),
            recover: false,
            threads: 0,
            poison: None,
            trace: true,
        }
    }
}

impl ReportSpec {
    /// Spec with the recovery pass enabled.
    pub fn recovered() -> ReportSpec {
        ReportSpec::default().with_recover(true)
    }

    /// Set the row shaping (event columns, percent floor, row cap).
    pub fn with_options(mut self, options: ReportOptions) -> ReportSpec {
        self.options = options;
        self
    }

    /// Toggle the journal-replay recovery pass.
    pub fn with_recover(mut self, recover: bool) -> ReportSpec {
        self.recover = recover;
        self
    }

    /// Set the shard count.
    pub fn threads(mut self, threads: usize) -> ReportSpec {
        self.threads = threads;
        self
    }

    /// Poison the shard holding `pid`'s JIT buckets (see
    /// [`crate::engine::ShardPoison`]).
    pub fn poison(mut self, poison: crate::engine::ShardPoison) -> ReportSpec {
        self.poison = Some(poison);
        self
    }

    /// Toggle lineage/trace construction.
    pub fn with_trace(mut self, trace: bool) -> ReportSpec {
        self.trace = trace;
        self
    }
}

/// Everything one post-processing pass produces.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SessionReport {
    /// The merged profile rows (Figure-1 upper half).
    pub lines: Report,
    /// Per-run resolution accounting; always sums to 100% of the
    /// emitted samples.
    pub quality: ResolutionQuality,
    /// Journal-replay outcome — `Some` iff [`ReportSpec::recover`] was
    /// set, with `samples_salvaged` measured against the degraded
    /// baseline.
    pub recovery: Option<RecoveryReport>,
    /// Per-incarnation breakdown of the JIT samples, one row per
    /// `(pid, gen)` seen in the database, sorted. Steady-state runs
    /// have one row per VM; restart/pid-reuse churn shows up as extra
    /// rows, each accounted against its own incarnation's maps only.
    pub incarnations: Vec<IncarnationSummary>,
    /// The resolve pass's own telemetry (`resolve.*` / `report.*`
    /// metrics). Offline stages count deterministic work units, not
    /// cycles, so this too is identical across same-seed runs and
    /// thread counts.
    pub telemetry: TelemetrySnapshot,
    /// Causal attribution of every `quality` loss bucket: per bucket,
    /// the entry sum equals the quality count exactly — dropped and
    /// evicted samples point back to the journal span that persisted
    /// the losing drain, blocked samples to their incarnation, and
    /// quarantined samples to the shard pass. Empty when
    /// [`ReportSpec::trace`] is off.
    pub lineage: LineageTable,
    /// The resolve pass's own span tree (work-unit pseudo-time, so it
    /// is byte-identical across thread counts and batch-vs-live).
    /// Empty when [`ReportSpec::trace`] is off.
    pub trace: TraceSnapshot,
    /// Declarative health findings evaluated over the session's
    /// exported timeline (`/var/log/viprof/timeline.json`). A pure
    /// function of the timeline artifact, so batch and sealed-live
    /// reports always agree; empty when the session exported no
    /// timeline (e.g. plain OProfile runs).
    pub health: HealthReport,
}

/// A running VIProf session: OProfile with the runtime-profiler
/// extension installed, plus the shared state VM agents attach to.
pub struct Viprof {
    op: Oprofile,
    pub registry: SharedRegistry,
    pub callgraph: Arc<Mutex<CallGraph>>,
    cost: CostModel,
    /// Map-fault template cloned into every agent this session builds
    /// (clones share the stats handle).
    agent_faults: Option<MapFaults>,
    /// Whether agents built by this session journal their map writes
    /// (mirrors `OpConfig::journal`, which covers the daemon side).
    journal: bool,
    /// Streaming resolution engine fed by the daemon's drain sink
    /// (sessions built with [`SessionBuilder::live`] only).
    live: Option<Arc<Mutex<LiveEngine>>>,
}

impl Viprof {
    /// Start configuring a session; finish with
    /// [`SessionBuilder::start`].
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    fn start_inner(
        machine: &mut Machine,
        mut config: OpConfig,
        agent_faults: Option<MapFaults>,
        live: Option<LiveSpec>,
    ) -> Viprof {
        let live = live.map(|spec| {
            // The live engine shares the session's registry (created
            // here when the config didn't bring one) and mirrors the
            // daemon's admission cap, then plugs into the drain sink.
            let telemetry = config.telemetry.get_or_insert_with(Telemetry::new).clone();
            let mut engine = LiveEngine::new(spec);
            engine.set_telemetry(&telemetry);
            engine.set_db_cap(config.db_bucket_cap);
            let engine = Arc::new(Mutex::new(engine));
            config.drain_sink = Some(LiveEngine::sink(engine.clone()));
            engine
        });
        let registry = JitRegistry::shared();
        let cost = config.cost;
        let journal = config.journal;
        let ext = Box::new(ViprofExtension::new(registry.clone(), cost.vm_probe_cycles));
        let op = Oprofile::start_with_extension(machine, config, ext);
        Viprof {
            op,
            registry,
            callgraph: Arc::new(Mutex::new(CallGraph::new())),
            cost,
            agent_faults,
            journal,
            live,
        }
    }

    /// Build a VM Agent wired to this session. Pass the result to
    /// `sim_jvm::Vm::boot` as its hooks. One agent per VM; all agents
    /// share the registry (and call graph) of this session.
    pub fn make_agent(&self) -> VmAgent {
        self.make_agent_with(false)
    }

    /// Agent with the precise-move extension toggled (E4 ablation; see
    /// `VmAgent::with_precise_moves`).
    pub fn make_agent_with(&self, precise_moves: bool) -> VmAgent {
        let mut agent = VmAgent::new(self.registry.clone(), self.cost)
            .with_callgraph(self.callgraph.clone(), 16)
            .with_precise_moves(precise_moves)
            .with_journal(self.journal)
            .with_telemetry(&self.op.telemetry());
        if let Some(faults) = &self.agent_faults {
            agent = agent.with_map_faults(faults.clone());
        }
        agent
    }

    /// The session's shared telemetry registry (the same one every
    /// layer — CPU, buffer, daemon, journal, agents — records into).
    pub fn telemetry(&self) -> Telemetry {
        self.op.telemetry()
    }

    pub fn driver_stats(&self) -> DriverStats {
        self.op.driver_stats()
    }

    /// Injected driver-fault counters (fault-plan sessions only).
    pub fn driver_fault_stats(&self) -> Option<DriverFaultStats> {
        self.op.driver_fault_stats()
    }

    /// Injected daemon-fault counters (fault-plan sessions only).
    pub fn daemon_fault_stats(&self) -> Option<DaemonFaultStats> {
        self.op.daemon_fault_stats()
    }

    /// Injected map-write fault counters (fault-plan sessions only).
    pub fn map_fault_stats(&self) -> Option<MapFaultStats> {
        self.agent_faults.as_ref().map(|f| f.stats())
    }

    /// Watchdog/restart counters (supervised sessions only).
    pub fn supervisor_stats(&self) -> Option<SupervisorStats> {
        self.op.supervisor_stats()
    }

    pub fn db_snapshot(&self) -> SampleDb {
        self.op.db_snapshot()
    }

    /// Stop profiling; returns the final sample database. A live
    /// session's engine is sealed here — it replays any journal
    /// batches the sink never saw and does a final map rescan, after
    /// which [`Viprof::live_snapshot`] equals the offline report.
    pub fn stop(&self, machine: &mut Machine) -> SampleDb {
        let db = self.op.stop(machine);
        if let Some(live) = &self.live {
            live.lock().seal(&machine.kernel);
        }
        db
    }

    /// The shared live engine, for direct inspection (live sessions
    /// only).
    pub fn live_engine(&self) -> Option<Arc<Mutex<LiveEngine>>> {
        self.live.clone()
    }

    /// Resolve the live engine's current state into a full
    /// [`SessionReport`] — mid-run or after [`Viprof::stop`]. `None`
    /// unless the session was built with [`SessionBuilder::live`].
    /// Cost is proportional to the aggregate (distinct buckets +
    /// rows), independent of how many samples have arrived.
    pub fn live_snapshot(&self, kernel: &Kernel, spec: &ReportSpec) -> Option<SessionReport> {
        let live = self.live.as_ref()?;
        Some(live.lock().snapshot(kernel, spec))
    }

    /// Post-process one session: load maps from the VFS (optionally
    /// through journal-replay recovery), flatten them into the
    /// [`ResolutionEngine`], and resolve the database across
    /// `spec.threads` shards. One entrypoint for everything the old
    /// `report`/`report_with_quality`/`report_with_recovery` trio did —
    /// lines, quality accounting and recovery outcome come back
    /// together in a [`SessionReport`].
    pub fn make_report(
        db: &SampleDb,
        kernel: &Kernel,
        spec: &ReportSpec,
    ) -> Result<SessionReport, ViprofError> {
        // Each pass gets a fresh registry: report telemetry describes
        // *this* resolve, and stays byte-identical across same-seed
        // runs. Only the engine is attached — the reference resolver's
        // mirror would double count the same registry.
        let telemetry = Telemetry::new();
        let (resolver, mut rec) =
            ViprofResolver::load_with(kernel, ResolveOptions { recover: spec.recover })?;
        let loaded_entries: u64 = resolver
            .sets()
            .map(|(_, set)| set.total_entries() as u64)
            .sum();
        telemetry
            .stage(names::STAGE_RESOLVE_LOAD)
            .record(loaded_entries);
        let mut engine = ResolutionEngine::build(&resolver);
        engine.set_telemetry(&telemetry);
        let mut report = engine.resolve(db, kernel, spec);
        if spec.recover {
            // Measure the degraded baseline alongside, so the recovery
            // report can say how many samples replay salvaged. The
            // baseline engine stays un-attached: its pass is scaffolding,
            // not part of this report's accounting.
            let (degraded, _) = ViprofResolver::load_with(kernel, ResolveOptions::default())?;
            let baseline = ResolutionEngine::build(&degraded).quality(db, spec.threads);
            rec.samples_salvaged = report.quality.resolved.saturating_sub(baseline.resolved);
            report.recovery = Some(rec);
        }
        // The engine snapshotted before the baseline pass; re-snapshot
        // so the report carries the registry's final state (identical —
        // the baseline engine is un-attached).
        report.telemetry = telemetry.snapshot();
        Ok(report)
    }

    /// Export a complete, self-contained session to a real directory:
    /// the machine's VFS (sample db, epoch code maps, `RVM.map`) plus
    /// image/process metadata, so `viprof-report` (or any external
    /// tool) can post-process offline — the `opreport`-after-
    /// `opcontrol --stop` workflow.
    pub fn export_session(
        machine: &mut Machine,
        dir: &std::path::Path,
    ) -> std::io::Result<usize> {
        let to_io = |e: serde_json::Error| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, e)
        };
        let images = serde_json::to_vec_pretty(&machine.kernel.images).map_err(to_io)?;
        machine.kernel.vfs.write(SESSION_META_IMAGES, images);
        let procs: Vec<&sim_os::Process> = machine.kernel.processes().collect();
        let procs = serde_json::to_vec_pretty(&procs).map_err(to_io)?;
        machine.kernel.vfs.write(SESSION_META_PROCESSES, procs);
        // The manifest goes in last so it covers everything above; it
        // cannot digest itself and is excluded from its own map.
        let manifest = serde_json::to_vec_pretty(&session_manifest(&machine.kernel.vfs))
            .map_err(to_io)?;
        machine.kernel.vfs.write(SESSION_MANIFEST, manifest);
        std::fs::create_dir_all(dir)?;
        machine.kernel.vfs.export_to_dir(dir)
    }

    /// Rebuild a kernel view from an exported session directory.
    /// The returned kernel carries the session's images, processes and
    /// VFS — everything `Viprof::report` needs. The session manifest
    /// (when present) is verified file-by-file; any integrity violation
    /// is a [`ViprofError::Corrupt`] — use
    /// [`Viprof::import_session_lenient`] to load anyway and inspect
    /// the damage.
    pub fn import_session(dir: &std::path::Path) -> Result<Kernel, ViprofError> {
        let (kernel, mismatches) = Self::import_session_lenient(dir)?;
        if let Some(first) = mismatches.first() {
            return Err(ViprofError::Corrupt {
                path: format!("{}", dir.display()),
                detail: format!(
                    "{} integrity violation(s); first: {first}",
                    mismatches.len()
                ),
            });
        }
        Ok(kernel)
    }

    /// [`Viprof::import_session`] that tolerates integrity violations:
    /// loads whatever is there and returns one human-readable line per
    /// manifest mismatch (the recovery workflow feeds these to the
    /// journal-replay pass instead of giving up).
    pub fn import_session_lenient(
        dir: &std::path::Path,
    ) -> Result<(Kernel, Vec<String>), ViprofError> {
        let vfs = sim_os::Vfs::import_from_dir(dir).map_err(|e| ViprofError::Io {
            path: format!("{}", dir.display()),
            detail: e.to_string(),
        })?;
        let mismatches = verify_manifest(&vfs)?;
        let mut kernel = Kernel::new();
        let images = vfs
            .read(SESSION_META_IMAGES)
            .ok_or_else(|| ViprofError::MissingArtifact {
                path: SESSION_META_IMAGES.to_string(),
            })?;
        kernel.images = serde_json::from_slice(images).map_err(|e| ViprofError::Corrupt {
            path: SESSION_META_IMAGES.to_string(),
            detail: e.to_string(),
        })?;
        let procs = vfs
            .read(SESSION_META_PROCESSES)
            .ok_or_else(|| ViprofError::MissingArtifact {
                path: SESSION_META_PROCESSES.to_string(),
            })?;
        let procs: Vec<sim_os::Process> =
            serde_json::from_slice(procs).map_err(|e| ViprofError::Corrupt {
                path: SESSION_META_PROCESSES.to_string(),
                detail: e.to_string(),
            })?;
        for p in procs {
            kernel.insert_process(p);
        }
        kernel.vfs = vfs;
        Ok((kernel, mismatches))
    }
}

/// Session-metadata paths written by [`Viprof::export_session`].
pub const SESSION_META_IMAGES: &str = "/meta/images.json";
pub const SESSION_META_PROCESSES: &str = "/meta/processes.json";
/// Integrity manifest covering every other file in the export.
pub const SESSION_MANIFEST: &str = "/meta/manifest.json";

/// Per-file integrity digest recorded in the session manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileDigest {
    pub len: u64,
    pub crc32: u32,
}

impl FileDigest {
    pub fn of(data: &[u8]) -> FileDigest {
        FileDigest {
            len: data.len() as u64,
            crc32: crc32(data),
        }
    }
}

/// Digest every VFS file except the manifest itself.
fn session_manifest(vfs: &Vfs) -> BTreeMap<String, FileDigest> {
    vfs.list("")
        .into_iter()
        .filter(|p| *p != SESSION_MANIFEST)
        .map(|p| {
            let data = vfs.read(p).unwrap_or_default();
            (p.to_string(), FileDigest::of(data))
        })
        .collect()
}

/// Check an imported VFS against its manifest. A session without a
/// manifest (pre-manifest export) verifies vacuously; an unparseable
/// manifest is itself corruption.
fn verify_manifest(vfs: &Vfs) -> Result<Vec<String>, ViprofError> {
    let Some(raw) = vfs.read(SESSION_MANIFEST) else {
        return Ok(Vec::new());
    };
    let manifest: BTreeMap<String, FileDigest> =
        serde_json::from_slice(raw).map_err(|e| ViprofError::Corrupt {
            path: SESSION_MANIFEST.to_string(),
            detail: e.to_string(),
        })?;
    let mut mismatches = Vec::new();
    for (path, want) in &manifest {
        match vfs.read(path) {
            None => mismatches.push(format!("{path}: listed in manifest but absent")),
            Some(data) => {
                let got = FileDigest::of(data);
                if got != *want {
                    mismatches.push(format!(
                        "{path}: digest mismatch (manifest {}B crc32 {:08x}, \
                         file {}B crc32 {:08x})",
                        want.len, want.crc32, got.len, got.crc32
                    ));
                }
            }
        }
    }
    Ok(mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cpu::HwEvent;
    use sim_jvm::{
        AosPolicy, ClassId, MethodAsm, NativeFn, NativeRegistry, Op, ProgramBuilder, ProgramDef,
        Tiering, Vm, VmConfig,
    };
    use sim_os::{Machine, MachineConfig};

    /// A small benchmark: hot arithmetic loop + allocation churn +
    /// a memset call, so samples land in JIT code, the VM, the GC and
    /// libc.
    fn bench_program(natives: &mut NativeRegistry) -> ProgramDef {
        let memset = natives.register(NativeFn::memset());
        let mut b = ProgramBuilder::new();
        let c = b.add_class("bench.Worker", 6);
        // Hot loop: pure compute.
        let mut hot = MethodAsm::new();
        hot.op(Op::Const(0)).op(Op::Store(0));
        hot.counted_loop(1, 50_000, |l| {
            l.op(Op::Load(0)).op(Op::Const(3)).op(Op::Add).op(Op::Store(0));
        });
        hot.op(Op::Load(0)).op(Op::Ret);
        let hot_m = b.add_method(c, "bench.Worker.hotLoop", 0, 2, hot.assemble().unwrap());
        // Churn: allocate objects.
        let mut churn = MethodAsm::new();
        churn.counted_loop(0, 300, |l| {
            l.op(Op::New(ClassId(0))).op(Op::Pop);
        });
        churn.op(Op::Const(0)).op(Op::Ret);
        let churn_m = b.add_method(c, "bench.Worker.churn", 0, 1, churn.assemble().unwrap());
        // Main: loop { hot(); churn(); memset(64k) }
        let mut main = MethodAsm::new();
        main.counted_loop(0, 8, |l| {
            l.op(Op::Call(hot_m))
                .op(Op::Pop)
                .op(Op::Call(churn_m))
                .op(Op::Pop)
                .op(Op::Const(65_536))
                .op(Op::NativeCall(memset))
                .op(Op::Pop);
        });
        main.op(Op::Const(0)).op(Op::Ret);
        let main_m = b.add_method(c, "bench.Worker.main", 0, 1, main.assemble().unwrap());
        b.set_entry(main_m);
        b.build_with_natives(natives).unwrap()
    }

    fn vm_config(heap_bytes: u64) -> VmConfig {
        VmConfig {
            heap_bytes,
            aos: AosPolicy {
                opt1_threshold: 4,
                opt2_threshold: 1_000_000,
            },
            tiering: Tiering::CompileOnFirstUse,
            ..VmConfig::default()
        }
    }

    #[test]
    fn end_to_end_vertical_profile() {
        let mut machine = Machine::new(MachineConfig::default());
        let viprof = Viprof::builder()
            .config(OpConfig::figure1(20_000, 400))
            .start(&mut machine);
        let mut natives = NativeRegistry::new();
        let program = bench_program(&mut natives);
        let agent = viprof.make_agent();
        let agent_stats = agent.stats_handle();
        let mut vm = Vm::boot(
            &mut machine,
            program,
            natives,
            vm_config(96 * 1024),
            Box::new(agent),
        );
        vm.run(&mut machine);
        vm.shutdown(&mut machine);
        let db = viprof.stop(&mut machine);

        // The profile saw JIT samples (registered heap, not anon).
        let stats = viprof.driver_stats();
        assert!(stats.jit > 0, "JIT.App samples: {stats:?}");
        assert!(stats.image > 0, "boot-image/native samples: {stats:?}");
        assert_eq!(
            stats.anon, 0,
            "VM heap is registered — nothing should fall into anon"
        );

        // Agent produced maps (≥1 GC + final flush).
        let ast = agent_stats.lock();
        assert!(ast.compiles_logged >= 3);
        assert!(ast.maps_written >= 2);
        assert!(ast.moves_flagged > 0, "GC must move code at least once");
        drop(ast);

        // The merged report resolves JIT methods by name.
        let report = Viprof::make_report(&db, &machine.kernel, &ReportSpec::default())
            .unwrap()
            .lines;
        let jit_rows: Vec<_> = report
            .rows
            .iter()
            .filter(|r| r.image == "JIT.App")
            .collect();
        assert!(!jit_rows.is_empty());
        assert!(
            jit_rows.iter().any(|r| r.symbol == "bench.Worker.hotLoop"),
            "hot loop must dominate JIT rows: {:?}",
            jit_rows.iter().map(|r| &r.symbol).collect::<Vec<_>>()
        );
        assert!(
            jit_rows.iter().all(|r| r.symbol != "(unresolved jit)"),
            "every JIT sample resolves through the epoch maps"
        );
        // VM internals resolved through RVM.map.
        assert!(report.rows.iter().any(|r| r.image == "RVM.map"));
        // Native library present.
        assert!(report
            .rows
            .iter()
            .any(|r| r.image == "libc-2.3.2.so" && r.symbol == "memset"));
        // Two event columns (Figure 1).
        assert_eq!(report.events, vec![HwEvent::Cycles, HwEvent::L2Miss]);

        // Cross-layer call graph captured the Java→libc edge.
        let cg = viprof.callgraph.lock();
        assert!(cg.total_edges() > 0);
        let top = cg.top_edges(20);
        assert!(
            top.iter()
                .any(|(a, b, _)| a.contains("bench.Worker.main") && *b == "memset"),
            "expected main->memset edge in {top:?}"
        );
    }

    #[test]
    fn faulted_session_degrades_but_accounts_for_everything() {
        // Moderate faults at all three layers: the run must complete,
        // and the quality report must cover every emitted sample.
        let mut machine = Machine::new(MachineConfig::default());
        let plan = FaultPlan::new(77)
            .with_overflow_bursts(0.25, 2)
            .with_lost_maps(0.5)
            .with_garbled_lines(0.25);
        let viprof = Viprof::builder()
            .config(OpConfig::time_at(20_000))
            .faults(&plan)
            .start(&mut machine);
        let mut natives = NativeRegistry::new();
        let program = bench_program(&mut natives);
        let mut vm = Vm::boot(
            &mut machine,
            program,
            natives,
            vm_config(96 * 1024),
            Box::new(viprof.make_agent()),
        );
        vm.run(&mut machine);
        vm.shutdown(&mut machine);
        let db = viprof.stop(&mut machine);

        let drv = viprof.driver_fault_stats().expect("injector installed");
        assert!(drv.forced_drops > 0, "bursts at 25% must fire: {drv:?}");
        assert!(viprof.map_fault_stats().is_some());
        // Forced drops are counted, never silent.
        assert!(db.dropped >= drv.forced_drops, "db.dropped {}", db.dropped);

        let rep =
            Viprof::make_report(&db, &machine.kernel, &ReportSpec::default()).unwrap();
        let (report, q) = (rep.lines, rep.quality);
        assert_eq!(q.accounted(), db.total_samples());
        assert_eq!(q.dropped, db.dropped);
        assert!(!report.rows.is_empty());
        // Single-VM run: exactly one incarnation row, generation 0,
        // and no cross-incarnation refusals.
        assert_eq!(rep.incarnations.len(), 1, "{:?}", rep.incarnations);
        assert_eq!(rep.incarnations[0].gen, 0);
        assert_eq!(rep.incarnations[0].blocked, 0);
        assert_eq!(q.cross_incarnation_blocked, 0);
        // The report's own telemetry mirrors the quality accounting.
        assert_eq!(
            rep.telemetry.counter(names::RESOLVE_SAMPLES_DROPPED),
            q.dropped
        );
        assert_eq!(
            rep.telemetry.counter(names::REPORT_ROWS),
            report.rows.len() as u64
        );
    }

    #[test]
    fn try_start_surfaces_invalid_config_as_typed_error() {
        // An unstartable config comes back as InvalidConfig before any
        // counter is programmed; the machine stays usable afterwards.
        let mut machine = Machine::new(MachineConfig::default());
        let mut config = OpConfig::time_at(20_000);
        config.events.clear();
        let err = Viprof::builder()
            .config(config)
            .try_start(&mut machine)
            .unwrap_err();
        assert!(matches!(err, ViprofError::InvalidConfig(_)), "{err:?}");
        assert!(
            err.to_string().starts_with("invalid session config:"),
            "{err}"
        );
        // Nothing was installed — a valid session still starts cleanly.
        let viprof = Viprof::builder()
            .config(OpConfig::time_at(20_000))
            .try_start(&mut machine)
            .unwrap();
        viprof.stop(&mut machine);
    }

    #[test]
    fn poisoned_report_spec_keeps_the_session_report_complete() {
        // A fatal shard poison routed through the high-level report
        // path: rows may shrink, but the quality accounting still
        // covers every emitted sample and the report never errors.
        let mut machine = Machine::new(MachineConfig::default());
        let viprof = Viprof::builder()
            .config(OpConfig::time_at(20_000))
            .start(&mut machine);
        let mut natives = NativeRegistry::new();
        let program = bench_program(&mut natives);
        let mut vm = Vm::boot(
            &mut machine,
            program,
            natives,
            vm_config(96 * 1024),
            Box::new(viprof.make_agent()),
        );
        vm.run(&mut machine);
        vm.shutdown(&mut machine);
        let db = viprof.stop(&mut machine);
        let pid = db
            .iter()
            .find_map(|(b, _)| match b.origin {
                oprofile::SampleOrigin::JitApp { pid, .. } => Some(pid),
                _ => None,
            })
            .expect("workload produced JIT samples");

        let clean = Viprof::make_report(&db, &machine.kernel, &ReportSpec::default()).unwrap();
        let spec = ReportSpec::default()
            .threads(4)
            .poison(crate::engine::ShardPoison { pid, fatal: true });
        let poisoned = Viprof::make_report(&db, &machine.kernel, &spec).unwrap();
        assert!(poisoned.quality.quarantined > 0);
        assert_eq!(poisoned.quality.accounted(), db.total_samples());
        assert_eq!(clean.quality.accounted(), poisoned.quality.accounted());
        assert!(
            poisoned.telemetry.counter(names::RESOLVE_SHARD_PANICS) > 0,
            "panic surfaced in the pass telemetry"
        );
    }

    #[test]
    fn builder_toggles_supervision_and_journaling() {
        // supervised(true) without a plan installs the default
        // watchdog; journal(true) reaches both the daemon and the
        // agents this session builds.
        let mut machine = Machine::new(MachineConfig::default());
        let viprof = Viprof::builder()
            .config(OpConfig::time_at(20_000))
            .journal(true)
            .supervised(true)
            .start(&mut machine);
        let mut natives = NativeRegistry::new();
        let program = bench_program(&mut natives);
        let mut vm = Vm::boot(
            &mut machine,
            program,
            natives,
            vm_config(96 * 1024),
            Box::new(viprof.make_agent()),
        );
        vm.run(&mut machine);
        vm.shutdown(&mut machine);
        let db = viprof.stop(&mut machine);
        assert!(viprof.supervisor_stats().is_some(), "watchdog installed");
        let replayed =
            crate::recover::recover_sample_db(&machine.kernel.vfs).expect("journaling on");
        assert_eq!(replayed.db, db);

        // supervised(false) overrides a config that asked for one.
        let mut machine = Machine::new(MachineConfig::default());
        let viprof = Viprof::builder()
            .config(OpConfig::time_at(20_000).with_supervisor(SupervisorConfig::default()))
            .supervised(false)
            .start(&mut machine);
        assert!(viprof.supervisor_stats().is_none());
        viprof.stop(&mut machine);
    }

    #[test]
    fn live_session_final_snapshot_matches_offline_report() {
        let mut machine = Machine::new(MachineConfig::default());
        let mut config = OpConfig::time_at(20_000);
        // Drain often so the stream sees many incremental batches.
        config.daemon_period_cycles = 2_000_000;
        let viprof = Viprof::builder()
            .config(config)
            .journal(true)
            .live(LiveSpec::new())
            .start(&mut machine);
        let mut natives = NativeRegistry::new();
        let program = bench_program(&mut natives);
        let mut vm = Vm::boot(
            &mut machine,
            program,
            natives,
            vm_config(96 * 1024),
            Box::new(viprof.make_agent()),
        );
        vm.run(&mut machine);

        // Mid-run: a full report is available and fully accounted
        // against the samples streamed so far.
        let mid = viprof
            .live_snapshot(&machine.kernel, &ReportSpec::default())
            .expect("live session");
        let live = viprof.live_engine().expect("live session");
        assert!(mid.quality.accounted() > 0, "{:?}", mid.quality);
        assert_eq!(mid.quality.accounted(), live.lock().db().total_samples());
        assert!(!mid.lines.rows.is_empty());

        vm.shutdown(&mut machine);
        let db = viprof.stop(&mut machine);

        // Sealed: the shadow database converged to the authoritative
        // one, and the final snapshot is bit-identical to the offline
        // report at every thread count.
        assert_eq!(*live.lock().db(), db);
        for threads in [1usize, 4] {
            let spec = ReportSpec::default().threads(threads);
            let snap = viprof
                .live_snapshot(&machine.kernel, &spec)
                .expect("live session");
            let offline = Viprof::make_report(&db, &machine.kernel, &spec).unwrap();
            assert_eq!(snap.lines, offline.lines, "threads={threads}");
            assert_eq!(snap.quality, offline.quality, "threads={threads}");
            assert_eq!(snap.incarnations, offline.incarnations, "threads={threads}");
        }

        // The streaming pipeline left its telemetry trail.
        let t = viprof.telemetry().snapshot();
        assert!(t.counter(names::LIVE_BATCHES) > 0);
        assert!(t.counter(names::LIVE_INCREMENTAL_EXTENDS) > 0);
        assert!(t.stage(names::STAGE_LIVE_SNAPSHOT).is_some());
    }

    #[test]
    fn oprofile_vs_viprof_same_workload_figure1_contrast() {
        // Run the identical benchmark under stock OProfile: JIT samples
        // must land in anon, and the boot image must stay symbol-less —
        // the paper's Figure-1 lower half.
        let mut machine = Machine::new(MachineConfig::default());
        let op = Oprofile::start(&mut machine, OpConfig::figure1(20_000, 400));
        let mut natives = NativeRegistry::new();
        let program = bench_program(&mut natives);
        let mut vm = Vm::boot(
            &mut machine,
            program,
            natives,
            vm_config(96 * 1024),
            Box::new(sim_jvm::NullHooks),
        );
        vm.run(&mut machine);
        vm.shutdown(&mut machine);
        let db = op.stop(&mut machine);
        let stats = op.driver_stats();
        assert!(stats.anon > 0, "JIT code is anon to stock OProfile");
        assert_eq!(stats.jit, 0);

        let report = oprofile::opreport(&db, &machine.kernel, &ReportOptions::default());
        assert!(report.rows.iter().any(|r| r.image.starts_with("anon (range:")));
        assert!(report
            .rows
            .iter()
            .any(|r| r.image == "RVM.code.image" && r.symbol == "(no symbols)"));
        assert!(!report.rows.iter().any(|r| r.image == "RVM.map"));
    }

    #[test]
    fn viprof_overhead_close_to_oprofile() {
        // §4.3: "On average, VIProf adds negligible overhead to what
        // Oprofile already introduces." Same workload, three runs. A
        // realistic heap keeps GC (and thus map-write) frequency sane;
        // the micro-benchmark is still short, so we assert the *regime*
        // here and leave the calibrated Figure-2 bands to the harness.
        fn run(profiler: u8) -> u64 {
            let mut machine = Machine::new(MachineConfig::default());
            let mut natives = NativeRegistry::new();
            let program = bench_program(&mut natives);
            let session: Option<Box<dyn FnOnce(&mut Machine)>> = match profiler {
                0 => None,
                1 => {
                    let op = Oprofile::start(&mut machine, OpConfig::time_at(90_000));
                    Some(Box::new(move |m: &mut Machine| {
                        op.stop(m);
                    }))
                }
                _ => {
                    // Scale the map-write cost down to micro-benchmark
                    // proportions: this test asserts the *driver/agent
                    // inline* regime; the disk-write amortization story
                    // is the harness's job (Figure 2 / E5).
                    let cost = sim_cpu::CostModel {
                        mapwrite_base_cycles: 200_000,
                        mapwrite_per_entry_cycles: 420,
                        ..sim_cpu::CostModel::default()
                    };
                    let vp = Viprof::builder()
                        .config(OpConfig::time_at(90_000).with_cost(cost))
                        .start(&mut machine);
                    let hooks = Box::new(vp.make_agent());
                    let mut vm = Vm::boot(
                        &mut machine,
                        program.clone(),
                        natives.clone(),
                        vm_config(2 * 1024 * 1024),
                        hooks,
                    );
                    vm.run(&mut machine);
                    vm.shutdown(&mut machine);
                    vp.stop(&mut machine);
                    return machine.cpu.clock.cycles();
                }
            };
            let mut vm = Vm::boot(
                &mut machine,
                program,
                natives,
                vm_config(2 * 1024 * 1024),
                Box::new(sim_jvm::NullHooks),
            );
            vm.run(&mut machine);
            vm.shutdown(&mut machine);
            if let Some(stop) = session {
                stop(&mut machine);
            }
            machine.cpu.clock.cycles()
        }
        let base = run(0);
        let oprof = run(1);
        let viprof = run(2);
        assert!(oprof > base);
        assert!(viprof > base);
        let o = (oprof - base) as f64 / base as f64;
        let v = (viprof - base) as f64 / base as f64;
        // Driver-side sampling keeps both in single-digit percent; the
        // agent's map writes add a bounded extra on this *short* run
        // (long runs amortize it — paper §4.3, checked in the harness).
        assert!(o > 0.005 && o < 0.15, "oprof overhead {o:.4}");
        assert!(v > 0.005 && v < 0.30, "viprof overhead {v:.4}");
        assert!(
            v - o < 0.20,
            "VIProf must stay near OProfile: o={o:.4} v={v:.4}"
        );
    }

    #[test]
    fn export_manifest_catches_bit_rot_and_deletion() {
        let mut machine = Machine::new(MachineConfig::default());
        let viprof = Viprof::builder()
            .config(OpConfig::time_at(20_000))
            .start(&mut machine);
        let mut natives = NativeRegistry::new();
        let program = bench_program(&mut natives);
        let mut vm = Vm::boot(
            &mut machine,
            program,
            natives,
            vm_config(96 * 1024),
            Box::new(viprof.make_agent()),
        );
        vm.run(&mut machine);
        vm.shutdown(&mut machine);
        viprof.stop(&mut machine);

        let dir =
            std::env::temp_dir().join(format!("viprof-manifest-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Viprof::export_session(&mut machine, &dir).unwrap();

        // Pristine round trip: strict import passes.
        let kernel = Viprof::import_session(&dir).unwrap();
        assert!(kernel.vfs.read(oprofile::SAMPLES_PATH).is_some());

        // Same-length bit rot in the sample db — the CRC catches what
        // a length check cannot.
        let victim = dir.join("var/lib/oprofile/samples/current.db");
        let mut rotted = std::fs::read(&victim).unwrap();
        let last = rotted.len() - 1;
        rotted[last] ^= 0xFF;
        std::fs::write(&victim, &rotted).unwrap();
        let err = Viprof::import_session(&dir).unwrap_err();
        assert!(matches!(err, ViprofError::Corrupt { .. }), "{err:?}");
        let (_, mismatches) = Viprof::import_session_lenient(&dir).unwrap();
        assert_eq!(mismatches.len(), 1, "{mismatches:?}");
        assert!(mismatches[0].contains("current.db"), "{mismatches:?}");
        assert!(mismatches[0].contains("digest mismatch"), "{mismatches:?}");

        // Deleting it is the other violation class: listed but absent.
        std::fs::remove_file(&victim).unwrap();
        let (_, mismatches) = Viprof::import_session_lenient(&dir).unwrap();
        assert_eq!(mismatches.len(), 1, "{mismatches:?}");
        assert!(mismatches[0].contains("absent"), "{mismatches:?}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journaled_session_recovers_torn_maps() {
        // Every map write torn on disk, but journaled: the recovery
        // replay must rebuild the pristine maps and account for every
        // sample, and the sample journal must replay to the final db.
        let mut machine = Machine::new(MachineConfig::default());
        let plan = FaultPlan::new(11).with_torn_maps(1.0);
        let viprof = Viprof::builder()
            .config(OpConfig::time_at(20_000))
            .journal(true)
            .faults(&plan)
            .start(&mut machine);
        let mut natives = NativeRegistry::new();
        let program = bench_program(&mut natives);
        let mut vm = Vm::boot(
            &mut machine,
            program,
            natives,
            vm_config(96 * 1024),
            Box::new(viprof.make_agent()),
        );
        vm.run(&mut machine);
        vm.shutdown(&mut machine);
        let db = viprof.stop(&mut machine);
        assert!(viprof.map_fault_stats().unwrap().torn_maps > 0);

        let degraded = Viprof::make_report(&db, &machine.kernel, &ReportSpec::default())
            .unwrap()
            .quality;
        let recovered =
            Viprof::make_report(&db, &machine.kernel, &ReportSpec::recovered()).unwrap();
        let (report, q) = (recovered.lines, recovered.quality);
        let rec = recovered.recovery.expect("recover spec returns a recovery report");
        assert!(rec.journals_scanned >= 1, "{rec:?}");
        assert!(rec.records_replayed > 0, "{rec:?}");
        assert!(q.resolved >= degraded.resolved);
        assert_eq!(rec.samples_salvaged, q.resolved - degraded.resolved);
        assert_eq!(q.accounted(), db.total_samples());
        assert!(!report.rows.is_empty());

        // Daemon-side: the batch journal replays to exactly the
        // persisted database, drops included.
        let replayed =
            crate::recover::recover_sample_db(&machine.kernel.vfs).expect("journaling on");
        assert_eq!(replayed.db, db);
        assert_eq!(replayed.truncated_bytes, 0);
    }
}
