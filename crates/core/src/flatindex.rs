//! Flattened epoch interval index.
//!
//! [`crate::codemap::CodeMapSet::resolve`] implements the paper's
//! backward walk literally: search the sample's epoch map, then every
//! earlier map, one binary search per epoch (§3.2). Correct, but the
//! post-processing hot path pays O(epochs · log entries) per bucket on
//! deep-epoch sessions.
//!
//! [`FlatIndex`] collapses the whole chain into one sorted table of
//! disjoint address segments. Each segment carries the *layer list* of
//! epochs whose map covers it, epoch-ascending, with the covering
//! entry's signature interned as an [`Arc<str>`]. Resolution becomes
//! one binary search over segments plus one `partition_point` over the
//! segment's layers:
//!
//! * backward walk ("most recent occupant", last-writer-wins) — the
//!   greatest layer with epoch ≤ the sample's epoch;
//! * forward salvage (stale attribution for damaged chains) — the
//!   smallest layer with epoch > the sample's epoch, when no backward
//!   layer exists.
//!
//! The flattening reproduces the chained walk *exactly*, including its
//! shadowing quirk: within one epoch map, `EpochMap::resolve` only
//! consults the entry with the greatest start address ≤ pc, so an
//! earlier entry that overlaps past a later entry's start is never
//! seen there. Effective per-epoch coverage of an entry is therefore
//! `[addr, min(addr + size, next entry's addr))`, and for duplicate
//! start addresses only the last entry in sort order (stable, so
//! insertion order) counts. Equivalence against the legacy walk is
//! property-tested in `tests/prop_resolve_flat.rs`.

use crate::codemap::{CodeMapSet, EpochMap};
use sim_cpu::Addr;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// One covering layer discovered during flattening: which map (epoch +
/// position in the set, to order duplicate-epoch maps exactly like the
/// walk does), covering which address range, resolving to which
/// interned symbol.
struct LayerSpan {
    start: u64,
    end: u64,
    /// Walk order: (epoch, ordinal of the map within the sorted set).
    /// The backward walk visits maps in descending `(epoch, ordinal)`;
    /// forward salvage in ascending order past the sample's epoch.
    key: (u64, u32),
    sym: u32,
}

/// The flattened, immutable index for one pid's epoch-map chain.
///
/// Column-oriented storage: segment `i` spans
/// `[starts[i], ends[i])` and owns layers
/// `layer_off[i] .. layer_off[i + 1]`, sorted ascending by
/// `(epoch, map ordinal)`. Symbols are interned once per distinct
/// signature; lookups hand out cheap [`Arc<str>`] clones instead of
/// allocating a `String` per bucket.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlatIndex {
    starts: Vec<u64>,
    ends: Vec<u64>,
    layer_off: Vec<u32>,
    layer_epochs: Vec<u64>,
    layer_syms: Vec<u32>,
    syms: Vec<Arc<str>>,
}

impl FlatIndex {
    /// Flatten a loaded epoch chain. Build cost is
    /// O(total entries · log total entries); every subsequent lookup is
    /// two binary searches regardless of epoch depth.
    pub fn build(set: &CodeMapSet) -> FlatIndex {
        let mut syms: Vec<Arc<str>> = Vec::new();
        let mut sym_ids: HashMap<Arc<str>, u32> = HashMap::new();
        let mut spans: Vec<LayerSpan> = Vec::new();

        for (ordinal, map) in set.maps().iter().enumerate() {
            Self::map_spans(map, ordinal as u32, &mut syms, &mut sym_ids, &mut spans);
        }
        Self::sweep(spans, syms)
    }

    /// Generate the effective coverage spans of one epoch map,
    /// interning signatures in first-encounter order (the order `build`
    /// uses, so incremental extension reproduces it exactly).
    fn map_spans(
        map: &EpochMap,
        ordinal: u32,
        syms: &mut Vec<Arc<str>>,
        sym_ids: &mut HashMap<Arc<str>, u32>,
        spans: &mut Vec<LayerSpan>,
    ) {
        let entries = map.entries();
        let mut i = 0;
        while i < entries.len() {
            // Group entries sharing a start address: the walk's
            // `partition_point(addr <= pc)` lands on the *last* of
            // the group, so only that entry can ever resolve.
            let addr = entries[i].addr;
            let mut j = i + 1;
            while j < entries.len() && entries[j].addr == addr {
                j += 1;
            }
            let cand = &entries[j - 1];
            // Coverage is cut at the next distinct start address:
            // past it the walk consults a later entry and never
            // falls back, even on a containment miss.
            let mut end = addr.saturating_add(cand.size);
            if let Some(next) = entries.get(j) {
                end = end.min(next.addr);
            }
            if end > addr {
                let sym = match sym_ids.get(cand.signature.as_str()) {
                    Some(&id) => id,
                    None => {
                        let id = syms.len() as u32;
                        let s: Arc<str> = Arc::from(cand.signature.as_str());
                        syms.push(s.clone());
                        sym_ids.insert(s, id);
                        id
                    }
                };
                spans.push(LayerSpan {
                    start: addr,
                    end,
                    key: (map.epoch, ordinal),
                    sym,
                });
            }
            i = j;
        }
    }

    /// Append one epoch map to an already-flattened chain *in place*,
    /// re-sweeping only the address window the new map touches instead
    /// of re-flattening the whole chain.
    ///
    /// `ordinal` is the map's position in the chain (the number of maps
    /// already flattened), exactly as `build` would number it.
    ///
    /// Returns `false` — with the index untouched — when the append
    /// cannot take the fast path: the new map's epoch precedes an
    /// existing layer's, so its layers would not sort last and the
    /// caller must rebuild from the full chain. On `true` the result is
    /// identical (segments, layer order, merge decisions *and* symbol
    /// interning order, i.e. `==`) to `FlatIndex::build` over the
    /// extended chain.
    pub fn extend(&mut self, map: &EpochMap, ordinal: u32) -> bool {
        if self.layer_epochs.iter().any(|&e| e > map.epoch) {
            return false;
        }
        let mut sym_ids: HashMap<Arc<str>, u32> = self
            .syms
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
        let mut syms = std::mem::take(&mut self.syms);
        let mut spans: Vec<LayerSpan> = Vec::new();
        Self::map_spans(map, ordinal, &mut syms, &mut sym_ids, &mut spans);
        if spans.is_empty() {
            // Nothing covered (empty or all-zero-size map): the full
            // rebuild would produce the same index we already hold.
            self.syms = syms;
            return true;
        }
        let lo = spans.iter().map(|s| s.start).min().expect("non-empty");
        let hi = spans.iter().map(|s| s.end).max().expect("non-empty");
        // Existing segments overlapping [lo, hi): segments are disjoint
        // and ascending, so both columns are sorted. Straddling
        // segments are pulled into the window whole.
        let first = self.ends.partition_point(|e| *e <= lo);
        let last = self.starts.partition_point(|s| *s < hi);
        // Decompose the window's segments back into spans. Each layer
        // becomes one fragment span keyed by (epoch, position in its
        // stack): positions preserve the stack's (epoch, ordinal)
        // order, fragments from distinct segments never overlap, and
        // every position is < `ordinal`, so the new map's layers still
        // sort last among equal epochs — the sweep reproduces exactly
        // what a full rebuild would.
        for seg in first..last {
            let lo_off = self.layer_off[seg] as usize;
            let hi_off = self.layer_off[seg + 1] as usize;
            for (pos, k) in (lo_off..hi_off).enumerate() {
                spans.push(LayerSpan {
                    start: self.starts[seg],
                    end: self.ends[seg],
                    key: (self.layer_epochs[k], pos as u32),
                    sym: self.layer_syms[k],
                });
            }
        }
        let mini = Self::sweep(spans, syms);
        self.splice(first, last, mini);
        true
    }

    /// Replace segments `[first, last)` with a re-swept window,
    /// re-merging across both splice edges.
    fn splice(&mut self, first: usize, last: usize, mini: FlatIndex) {
        let lo_off = self.layer_off[first] as usize;
        let hi_off = self.layer_off[last] as usize;
        let mini_layers = mini.layer_epochs.len();
        let mini_segs = mini.starts.len();
        self.syms = mini.syms;
        self.layer_epochs.splice(lo_off..hi_off, mini.layer_epochs);
        self.layer_syms.splice(lo_off..hi_off, mini.layer_syms);
        self.starts.splice(first..last, mini.starts);
        self.ends.splice(first..last, mini.ends);
        let mut layer_off =
            Vec::with_capacity(self.layer_off.len() - (last - first) + mini_segs);
        layer_off.extend_from_slice(&self.layer_off[..=first]);
        layer_off.extend(mini.layer_off[1..].iter().map(|&o| o + lo_off as u32));
        let shift = mini_layers as i64 - (hi_off - lo_off) as i64;
        layer_off.extend(
            self.layer_off[last + 1..]
                .iter()
                .map(|&o| (o as i64 + shift) as u32),
        );
        self.layer_off = layer_off;
        // A rewritten window edge may now carry the same layer stack as
        // its untouched neighbour; the full sweep would have merged
        // them. Right edge first so the left merge can't shift it.
        if mini_segs > 0 {
            self.try_merge(first + mini_segs - 1);
        }
        if first > 0 {
            self.try_merge(first - 1);
        }
    }

    /// Merge segments `i` and `i + 1` when contiguous with identical
    /// layer stacks — the same criterion `mergeable` applies during a
    /// full sweep.
    fn try_merge(&mut self, i: usize) {
        if i + 1 >= self.starts.len() || self.ends[i] != self.starts[i + 1] {
            return;
        }
        let (a_lo, a_hi) = (self.layer_off[i] as usize, self.layer_off[i + 1] as usize);
        let b_hi = self.layer_off[i + 2] as usize;
        let n = a_hi - a_lo;
        if b_hi - a_hi != n
            || !(0..n).all(|k| {
                self.layer_epochs[a_lo + k] == self.layer_epochs[a_hi + k]
                    && self.layer_syms[a_lo + k] == self.layer_syms[a_hi + k]
            })
        {
            return;
        }
        self.ends[i] = self.ends[i + 1];
        self.starts.remove(i + 1);
        self.ends.remove(i + 1);
        self.layer_epochs.drain(a_hi..b_hi);
        self.layer_syms.drain(a_hi..b_hi);
        self.layer_off.remove(i + 1);
        for o in &mut self.layer_off[i + 1..] {
            *o -= n as u32;
        }
    }

    /// Boundary sweep: turn per-epoch spans into disjoint elementary
    /// segments, each snapshotting the set of layers covering it.
    fn sweep(mut spans: Vec<LayerSpan>, syms: Vec<Arc<str>>) -> FlatIndex {
        let mut boundaries: Vec<u64> = Vec::with_capacity(spans.len() * 2);
        for s in &spans {
            boundaries.push(s.start);
            boundaries.push(s.end);
        }
        boundaries.sort_unstable();
        boundaries.dedup();
        spans.sort_unstable_by_key(|s| s.start);
        let mut by_end: Vec<usize> = (0..spans.len()).collect();
        by_end.sort_unstable_by_key(|&i| spans[i].end);

        let mut idx = FlatIndex {
            syms,
            layer_off: vec![0],
            ..FlatIndex::default()
        };
        // Spans from one map never overlap (entry groups are disjoint
        // after truncation), so `(epoch, ordinal)` uniquely keys the
        // active set at any address.
        let mut active: BTreeMap<(u64, u32), u32> = BTreeMap::new();
        let (mut si, mut ei) = (0, 0);
        for (bi, &b) in boundaries.iter().enumerate() {
            while ei < by_end.len() && spans[by_end[ei]].end <= b {
                active.remove(&spans[by_end[ei]].key);
                ei += 1;
            }
            while si < spans.len() && spans[si].start <= b {
                active.insert(spans[si].key, spans[si].sym);
                si += 1;
            }
            let Some(&next) = boundaries.get(bi + 1) else {
                break;
            };
            if active.is_empty() {
                continue;
            }
            if idx.mergeable(b, &active) {
                *idx.ends.last_mut().expect("mergeable implies a segment") = next;
                continue;
            }
            idx.starts.push(b);
            idx.ends.push(next);
            for (&(epoch, _), &sym) in &active {
                idx.layer_epochs.push(epoch);
                idx.layer_syms.push(sym);
            }
            idx.layer_off.push(idx.layer_epochs.len() as u32);
        }
        idx
    }

    /// Can `[b, …)` extend the previous segment? Only when it is
    /// contiguous and carries the identical layer stack.
    fn mergeable(&self, b: u64, active: &BTreeMap<(u64, u32), u32>) -> bool {
        let n = self.starts.len();
        if n == 0 || self.ends[n - 1] != b {
            return false;
        }
        let lo = self.layer_off[n - 1] as usize;
        let hi = self.layer_off[n] as usize;
        hi - lo == active.len()
            && active
                .iter()
                .zip(lo..hi)
                .all(|((&(epoch, _), &sym), k)| {
                    self.layer_epochs[k] == epoch && self.layer_syms[k] == sym
                })
    }

    /// The paper's backward walk, flattened: the most recent occupant
    /// of `pc` at or before `epoch`, or `None`.
    pub fn resolve(&self, pc: Addr, epoch: u64) -> Option<&Arc<str>> {
        match self.lookup(pc, epoch) {
            Some((sym, false)) => Some(sym),
            _ => None,
        }
    }

    /// Backward walk plus forward salvage, mirroring
    /// [`CodeMapSet::resolve_salvage`]: a backward hit is
    /// `(sym, false)`; when every covering layer is *later* than the
    /// sample's epoch the earliest one is returned as `(sym, true)`
    /// (stale attribution); an uncovered pc is `None`.
    pub fn resolve_salvage(&self, pc: Addr, epoch: u64) -> Option<(&Arc<str>, bool)> {
        self.lookup(pc, epoch)
    }

    fn lookup(&self, pc: Addr, epoch: u64) -> Option<(&Arc<str>, bool)> {
        let seg = self.starts.partition_point(|s| *s <= pc).checked_sub(1)?;
        if pc >= self.ends[seg] {
            return None;
        }
        let lo = self.layer_off[seg] as usize;
        let hi = self.layer_off[seg + 1] as usize;
        let pos = self.layer_epochs[lo..hi].partition_point(|e| *e <= epoch);
        if pos > 0 {
            Some((&self.syms[self.layer_syms[lo + pos - 1] as usize], false))
        } else {
            // A segment only exists where at least one layer covers it,
            // so a backward miss always salvages forward within it.
            Some((&self.syms[self.layer_syms[lo] as usize], true))
        }
    }

    /// Number of disjoint address segments.
    pub fn segments(&self) -> usize {
        self.starts.len()
    }

    /// Total layer records across all segments.
    pub fn layers(&self) -> usize {
        self.layer_epochs.len()
    }

    /// Number of distinct interned signatures.
    pub fn interned_symbols(&self) -> usize {
        self.syms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codemap::{CodeMapEntry, EpochMap};

    fn e(addr: Addr, size: u64, sig: &str) -> CodeMapEntry {
        CodeMapEntry {
            addr,
            size,
            level: "base".to_string(),
            signature: sig.to_string(),
        }
    }

    fn sig<'a>(hit: Option<(&'a Arc<str>, bool)>) -> Option<(&'a str, bool)> {
        hit.map(|(s, stale)| (&**s, stale))
    }

    #[test]
    fn backward_walk_finds_most_recent_occupant() {
        let set = CodeMapSet::new(vec![
            EpochMap::new(0, vec![e(0x100, 0x40, "A")]),
            EpochMap::new(1, vec![e(0x100, 0x40, "B")]),
            EpochMap::new(2, vec![e(0x900, 0x40, "C")]),
        ]);
        let f = FlatIndex::build(&set);
        assert_eq!(f.resolve(0x110, 0).map(|s| &**s), Some("A"));
        assert_eq!(f.resolve(0x110, 1).map(|s| &**s), Some("B"));
        assert_eq!(f.resolve(0x110, 2).map(|s| &**s), Some("B"));
        assert!(f.resolve(0x500, 2).is_none());
        assert!(f.resolve(0x13f, 9).is_some());
        assert!(f.resolve(0x140, 9).is_none(), "exclusive end");
    }

    #[test]
    fn resolution_never_looks_forward_without_salvage() {
        let set = CodeMapSet::new(vec![EpochMap::new(3, vec![e(0x100, 0x40, "X")])]);
        let f = FlatIndex::build(&set);
        assert!(f.resolve(0x110, 1).is_none());
        assert_eq!(f.resolve(0x110, 3).map(|s| &**s), Some("X"));
        assert_eq!(f.resolve(0x110, 9).map(|s| &**s), Some("X"));
    }

    #[test]
    fn salvage_matches_the_chained_walk() {
        let set = CodeMapSet::new(vec![
            EpochMap::new(0, vec![e(0x900, 0x40, "old")]),
            EpochMap::new(3, vec![e(0x100, 0x40, "X")]),
            EpochMap::new(5, vec![e(0x100, 0x40, "Y")]),
        ]);
        let f = FlatIndex::build(&set);
        // Forward salvage picks the *earliest* later layer, like the
        // walk's forward scan.
        assert_eq!(sig(f.resolve_salvage(0x110, 1)), Some(("X", true)));
        // Backward hits are never stale.
        assert_eq!(sig(f.resolve_salvage(0x910, 2)), Some(("old", false)));
        assert_eq!(sig(f.resolve_salvage(0x110, 4)), Some(("X", false)));
        assert!(f.resolve_salvage(0x500, 1).is_none());
    }

    #[test]
    fn shadowing_is_reproduced_exactly() {
        // "big" overlaps past "small"'s start; the walk consults only
        // the last entry with addr <= pc, so pcs past small's end are
        // misses even though big's range covers them.
        let set = CodeMapSet::new(vec![EpochMap::new(
            0,
            vec![e(0x100, 0x100, "big"), e(0x180, 0x40, "small")],
        )]);
        let f = FlatIndex::build(&set);
        assert_eq!(f.resolve(0x150, 0).map(|s| &**s), Some("big"));
        assert_eq!(f.resolve(0x190, 0).map(|s| &**s), Some("small"));
        assert!(f.resolve(0x1c8, 0).is_none(), "shadowed gap");
        assert!(set.resolve(0x1c8, 0).is_none(), "walk agrees");
    }

    #[test]
    fn duplicate_start_addresses_use_the_last_entry() {
        // Stable sort keeps insertion order; the walk's candidate is
        // the last of the equal-addr group.
        let set = CodeMapSet::new(vec![EpochMap::new(
            0,
            vec![e(0x100, 0x40, "first"), e(0x100, 0x20, "second")],
        )]);
        let f = FlatIndex::build(&set);
        assert_eq!(f.resolve(0x110, 0).map(|s| &**s), Some("second"));
        assert!(f.resolve(0x130, 0).is_none(), "first is shadowed entirely");
        assert_eq!(set.resolve(0x110, 0).unwrap().signature, "second");
        assert!(set.resolve(0x130, 0).is_none());
    }

    #[test]
    fn zero_sized_entries_cover_nothing() {
        let set = CodeMapSet::new(vec![EpochMap::new(0, vec![e(0x100, 0, "ghost")])]);
        let f = FlatIndex::build(&set);
        assert!(f.resolve(0x100, 0).is_none());
        assert_eq!(f.segments(), 0);
    }

    #[test]
    fn interning_dedups_signatures_across_epochs() {
        let set = CodeMapSet::new(vec![
            EpochMap::new(0, vec![e(0x100, 0x40, "m"), e(0x200, 0x40, "n")]),
            EpochMap::new(1, vec![e(0x300, 0x40, "m")]),
        ]);
        let f = FlatIndex::build(&set);
        assert_eq!(f.interned_symbols(), 2);
        // The two "m" layers hand out the same allocation.
        let a = f.resolve(0x110, 0).unwrap().clone();
        let b = f.resolve(0x310, 1).unwrap().clone();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn contiguous_identical_layers_merge() {
        // Two adjacent entries with the same signature in the same
        // epoch flatten to a single segment.
        let set = CodeMapSet::new(vec![EpochMap::new(
            0,
            vec![e(0x100, 0x40, "m"), e(0x140, 0x40, "m")],
        )]);
        let f = FlatIndex::build(&set);
        assert_eq!(f.segments(), 1);
        assert_eq!(f.resolve(0x17f, 0).map(|s| &**s), Some("m"));
        assert!(f.resolve(0x180, 0).is_none());
    }

    #[test]
    fn empty_set_resolves_nothing() {
        let f = FlatIndex::build(&CodeMapSet::default());
        assert!(f.resolve_salvage(0x100, 0).is_none());
        assert_eq!(f.segments(), 0);
    }

    /// Grow a chain one epoch at a time through `extend` and check the
    /// result is `==` (segments, layers *and* interning order) to a
    /// from-scratch build at every step.
    fn grow_and_check(maps: Vec<EpochMap>) {
        let mut inc = FlatIndex::build(&CodeMapSet::default());
        for n in 0..maps.len() {
            assert!(
                inc.extend(&maps[n], n as u32),
                "in-order append must take the fast path (epoch {})",
                maps[n].epoch
            );
            let full = FlatIndex::build(&CodeMapSet::new(maps[..=n].to_vec()));
            assert_eq!(inc, full, "diverged after appending epoch {}", maps[n].epoch);
        }
    }

    #[test]
    fn extend_matches_rebuild_across_overlaps_gaps_and_merges() {
        grow_and_check(vec![
            EpochMap::new(0, vec![e(0x100, 0x40, "A"), e(0x200, 0x40, "B")]),
            // Overlaps A's tail and the gap after it.
            EpochMap::new(1, vec![e(0x120, 0x100, "C")]),
            // Same epoch again (duplicate-epoch chain), shadowing quirk.
            EpochMap::new(1, vec![e(0x100, 0x100, "big"), e(0x180, 0x40, "small")]),
            // Disjoint from everything (pure insertion, no overlap).
            EpochMap::new(2, vec![e(0x900, 0x40, "D")]),
            // Adjacent same-signature coverage that must merge with D.
            EpochMap::new(3, vec![e(0x940, 0x40, "D")]),
            // Zero-size and empty maps are no-ops.
            EpochMap::new(4, vec![e(0x500, 0, "ghost")]),
            EpochMap::new(5, vec![]),
            // Re-covers the whole hull in one span.
            EpochMap::new(6, vec![e(0x80, 0xa00, "E")]),
        ]);
    }

    #[test]
    fn extend_refuses_out_of_order_epochs() {
        let set = CodeMapSet::new(vec![EpochMap::new(5, vec![e(0x100, 0x40, "X")])]);
        let mut f = FlatIndex::build(&set);
        let before = f.clone();
        assert!(!f.extend(&EpochMap::new(3, vec![e(0x100, 0x40, "Y")]), 1));
        assert_eq!(f, before, "refused extend must leave the index untouched");
        // Equal epoch is fine: the new map's ordinal still sorts last.
        assert!(f.extend(&EpochMap::new(5, vec![e(0x100, 0x40, "Y")]), 1));
        let full = FlatIndex::build(&CodeMapSet::new(vec![
            EpochMap::new(5, vec![e(0x100, 0x40, "X")]),
            EpochMap::new(5, vec![e(0x100, 0x40, "Y")]),
        ]));
        assert_eq!(f, full);
        assert_eq!(f.resolve(0x110, 5).map(|s| &**s), Some("Y"));
    }
}
