//! Flattened epoch interval index.
//!
//! [`crate::codemap::CodeMapSet::resolve`] implements the paper's
//! backward walk literally: search the sample's epoch map, then every
//! earlier map, one binary search per epoch (§3.2). Correct, but the
//! post-processing hot path pays O(epochs · log entries) per bucket on
//! deep-epoch sessions.
//!
//! [`FlatIndex`] collapses the whole chain into one sorted table of
//! disjoint address segments. Each segment carries the *layer list* of
//! epochs whose map covers it, epoch-ascending, with the covering
//! entry's signature interned as an [`Arc<str>`]. Resolution becomes
//! one binary search over segments plus one `partition_point` over the
//! segment's layers:
//!
//! * backward walk ("most recent occupant", last-writer-wins) — the
//!   greatest layer with epoch ≤ the sample's epoch;
//! * forward salvage (stale attribution for damaged chains) — the
//!   smallest layer with epoch > the sample's epoch, when no backward
//!   layer exists.
//!
//! The flattening reproduces the chained walk *exactly*, including its
//! shadowing quirk: within one epoch map, `EpochMap::resolve` only
//! consults the entry with the greatest start address ≤ pc, so an
//! earlier entry that overlaps past a later entry's start is never
//! seen there. Effective per-epoch coverage of an entry is therefore
//! `[addr, min(addr + size, next entry's addr))`, and for duplicate
//! start addresses only the last entry in sort order (stable, so
//! insertion order) counts. Equivalence against the legacy walk is
//! property-tested in `tests/prop_resolve_flat.rs`.

use crate::codemap::CodeMapSet;
use sim_cpu::Addr;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// One covering layer discovered during flattening: which map (epoch +
/// position in the set, to order duplicate-epoch maps exactly like the
/// walk does), covering which address range, resolving to which
/// interned symbol.
struct LayerSpan {
    start: u64,
    end: u64,
    /// Walk order: (epoch, ordinal of the map within the sorted set).
    /// The backward walk visits maps in descending `(epoch, ordinal)`;
    /// forward salvage in ascending order past the sample's epoch.
    key: (u64, u32),
    sym: u32,
}

/// The flattened, immutable index for one pid's epoch-map chain.
///
/// Column-oriented storage: segment `i` spans
/// `[starts[i], ends[i])` and owns layers
/// `layer_off[i] .. layer_off[i + 1]`, sorted ascending by
/// `(epoch, map ordinal)`. Symbols are interned once per distinct
/// signature; lookups hand out cheap [`Arc<str>`] clones instead of
/// allocating a `String` per bucket.
#[derive(Debug, Clone, Default)]
pub struct FlatIndex {
    starts: Vec<u64>,
    ends: Vec<u64>,
    layer_off: Vec<u32>,
    layer_epochs: Vec<u64>,
    layer_syms: Vec<u32>,
    syms: Vec<Arc<str>>,
}

impl FlatIndex {
    /// Flatten a loaded epoch chain. Build cost is
    /// O(total entries · log total entries); every subsequent lookup is
    /// two binary searches regardless of epoch depth.
    pub fn build(set: &CodeMapSet) -> FlatIndex {
        let mut syms: Vec<Arc<str>> = Vec::new();
        let mut sym_ids: HashMap<Arc<str>, u32> = HashMap::new();
        let mut spans: Vec<LayerSpan> = Vec::new();

        for (ordinal, map) in set.maps().iter().enumerate() {
            let entries = map.entries();
            let mut i = 0;
            while i < entries.len() {
                // Group entries sharing a start address: the walk's
                // `partition_point(addr <= pc)` lands on the *last* of
                // the group, so only that entry can ever resolve.
                let addr = entries[i].addr;
                let mut j = i + 1;
                while j < entries.len() && entries[j].addr == addr {
                    j += 1;
                }
                let cand = &entries[j - 1];
                // Coverage is cut at the next distinct start address:
                // past it the walk consults a later entry and never
                // falls back, even on a containment miss.
                let mut end = addr.saturating_add(cand.size);
                if let Some(next) = entries.get(j) {
                    end = end.min(next.addr);
                }
                if end > addr {
                    let sym = match sym_ids.get(cand.signature.as_str()) {
                        Some(&id) => id,
                        None => {
                            let id = syms.len() as u32;
                            let s: Arc<str> = Arc::from(cand.signature.as_str());
                            syms.push(s.clone());
                            sym_ids.insert(s, id);
                            id
                        }
                    };
                    spans.push(LayerSpan {
                        start: addr,
                        end,
                        key: (map.epoch, ordinal as u32),
                        sym,
                    });
                }
                i = j;
            }
        }
        Self::sweep(spans, syms)
    }

    /// Boundary sweep: turn per-epoch spans into disjoint elementary
    /// segments, each snapshotting the set of layers covering it.
    fn sweep(mut spans: Vec<LayerSpan>, syms: Vec<Arc<str>>) -> FlatIndex {
        let mut boundaries: Vec<u64> = Vec::with_capacity(spans.len() * 2);
        for s in &spans {
            boundaries.push(s.start);
            boundaries.push(s.end);
        }
        boundaries.sort_unstable();
        boundaries.dedup();
        spans.sort_unstable_by_key(|s| s.start);
        let mut by_end: Vec<usize> = (0..spans.len()).collect();
        by_end.sort_unstable_by_key(|&i| spans[i].end);

        let mut idx = FlatIndex {
            syms,
            layer_off: vec![0],
            ..FlatIndex::default()
        };
        // Spans from one map never overlap (entry groups are disjoint
        // after truncation), so `(epoch, ordinal)` uniquely keys the
        // active set at any address.
        let mut active: BTreeMap<(u64, u32), u32> = BTreeMap::new();
        let (mut si, mut ei) = (0, 0);
        for (bi, &b) in boundaries.iter().enumerate() {
            while ei < by_end.len() && spans[by_end[ei]].end <= b {
                active.remove(&spans[by_end[ei]].key);
                ei += 1;
            }
            while si < spans.len() && spans[si].start <= b {
                active.insert(spans[si].key, spans[si].sym);
                si += 1;
            }
            let Some(&next) = boundaries.get(bi + 1) else {
                break;
            };
            if active.is_empty() {
                continue;
            }
            if idx.mergeable(b, &active) {
                *idx.ends.last_mut().expect("mergeable implies a segment") = next;
                continue;
            }
            idx.starts.push(b);
            idx.ends.push(next);
            for (&(epoch, _), &sym) in &active {
                idx.layer_epochs.push(epoch);
                idx.layer_syms.push(sym);
            }
            idx.layer_off.push(idx.layer_epochs.len() as u32);
        }
        idx
    }

    /// Can `[b, …)` extend the previous segment? Only when it is
    /// contiguous and carries the identical layer stack.
    fn mergeable(&self, b: u64, active: &BTreeMap<(u64, u32), u32>) -> bool {
        let n = self.starts.len();
        if n == 0 || self.ends[n - 1] != b {
            return false;
        }
        let lo = self.layer_off[n - 1] as usize;
        let hi = self.layer_off[n] as usize;
        hi - lo == active.len()
            && active
                .iter()
                .zip(lo..hi)
                .all(|((&(epoch, _), &sym), k)| {
                    self.layer_epochs[k] == epoch && self.layer_syms[k] == sym
                })
    }

    /// The paper's backward walk, flattened: the most recent occupant
    /// of `pc` at or before `epoch`, or `None`.
    pub fn resolve(&self, pc: Addr, epoch: u64) -> Option<&Arc<str>> {
        match self.lookup(pc, epoch) {
            Some((sym, false)) => Some(sym),
            _ => None,
        }
    }

    /// Backward walk plus forward salvage, mirroring
    /// [`CodeMapSet::resolve_salvage`]: a backward hit is
    /// `(sym, false)`; when every covering layer is *later* than the
    /// sample's epoch the earliest one is returned as `(sym, true)`
    /// (stale attribution); an uncovered pc is `None`.
    pub fn resolve_salvage(&self, pc: Addr, epoch: u64) -> Option<(&Arc<str>, bool)> {
        self.lookup(pc, epoch)
    }

    fn lookup(&self, pc: Addr, epoch: u64) -> Option<(&Arc<str>, bool)> {
        let seg = self.starts.partition_point(|s| *s <= pc).checked_sub(1)?;
        if pc >= self.ends[seg] {
            return None;
        }
        let lo = self.layer_off[seg] as usize;
        let hi = self.layer_off[seg + 1] as usize;
        let pos = self.layer_epochs[lo..hi].partition_point(|e| *e <= epoch);
        if pos > 0 {
            Some((&self.syms[self.layer_syms[lo + pos - 1] as usize], false))
        } else {
            // A segment only exists where at least one layer covers it,
            // so a backward miss always salvages forward within it.
            Some((&self.syms[self.layer_syms[lo] as usize], true))
        }
    }

    /// Number of disjoint address segments.
    pub fn segments(&self) -> usize {
        self.starts.len()
    }

    /// Total layer records across all segments.
    pub fn layers(&self) -> usize {
        self.layer_epochs.len()
    }

    /// Number of distinct interned signatures.
    pub fn interned_symbols(&self) -> usize {
        self.syms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codemap::{CodeMapEntry, EpochMap};

    fn e(addr: Addr, size: u64, sig: &str) -> CodeMapEntry {
        CodeMapEntry {
            addr,
            size,
            level: "base".to_string(),
            signature: sig.to_string(),
        }
    }

    fn sig<'a>(hit: Option<(&'a Arc<str>, bool)>) -> Option<(&'a str, bool)> {
        hit.map(|(s, stale)| (&**s, stale))
    }

    #[test]
    fn backward_walk_finds_most_recent_occupant() {
        let set = CodeMapSet::new(vec![
            EpochMap::new(0, vec![e(0x100, 0x40, "A")]),
            EpochMap::new(1, vec![e(0x100, 0x40, "B")]),
            EpochMap::new(2, vec![e(0x900, 0x40, "C")]),
        ]);
        let f = FlatIndex::build(&set);
        assert_eq!(f.resolve(0x110, 0).map(|s| &**s), Some("A"));
        assert_eq!(f.resolve(0x110, 1).map(|s| &**s), Some("B"));
        assert_eq!(f.resolve(0x110, 2).map(|s| &**s), Some("B"));
        assert!(f.resolve(0x500, 2).is_none());
        assert!(f.resolve(0x13f, 9).is_some());
        assert!(f.resolve(0x140, 9).is_none(), "exclusive end");
    }

    #[test]
    fn resolution_never_looks_forward_without_salvage() {
        let set = CodeMapSet::new(vec![EpochMap::new(3, vec![e(0x100, 0x40, "X")])]);
        let f = FlatIndex::build(&set);
        assert!(f.resolve(0x110, 1).is_none());
        assert_eq!(f.resolve(0x110, 3).map(|s| &**s), Some("X"));
        assert_eq!(f.resolve(0x110, 9).map(|s| &**s), Some("X"));
    }

    #[test]
    fn salvage_matches_the_chained_walk() {
        let set = CodeMapSet::new(vec![
            EpochMap::new(0, vec![e(0x900, 0x40, "old")]),
            EpochMap::new(3, vec![e(0x100, 0x40, "X")]),
            EpochMap::new(5, vec![e(0x100, 0x40, "Y")]),
        ]);
        let f = FlatIndex::build(&set);
        // Forward salvage picks the *earliest* later layer, like the
        // walk's forward scan.
        assert_eq!(sig(f.resolve_salvage(0x110, 1)), Some(("X", true)));
        // Backward hits are never stale.
        assert_eq!(sig(f.resolve_salvage(0x910, 2)), Some(("old", false)));
        assert_eq!(sig(f.resolve_salvage(0x110, 4)), Some(("X", false)));
        assert!(f.resolve_salvage(0x500, 1).is_none());
    }

    #[test]
    fn shadowing_is_reproduced_exactly() {
        // "big" overlaps past "small"'s start; the walk consults only
        // the last entry with addr <= pc, so pcs past small's end are
        // misses even though big's range covers them.
        let set = CodeMapSet::new(vec![EpochMap::new(
            0,
            vec![e(0x100, 0x100, "big"), e(0x180, 0x40, "small")],
        )]);
        let f = FlatIndex::build(&set);
        assert_eq!(f.resolve(0x150, 0).map(|s| &**s), Some("big"));
        assert_eq!(f.resolve(0x190, 0).map(|s| &**s), Some("small"));
        assert!(f.resolve(0x1c8, 0).is_none(), "shadowed gap");
        assert!(set.resolve(0x1c8, 0).is_none(), "walk agrees");
    }

    #[test]
    fn duplicate_start_addresses_use_the_last_entry() {
        // Stable sort keeps insertion order; the walk's candidate is
        // the last of the equal-addr group.
        let set = CodeMapSet::new(vec![EpochMap::new(
            0,
            vec![e(0x100, 0x40, "first"), e(0x100, 0x20, "second")],
        )]);
        let f = FlatIndex::build(&set);
        assert_eq!(f.resolve(0x110, 0).map(|s| &**s), Some("second"));
        assert!(f.resolve(0x130, 0).is_none(), "first is shadowed entirely");
        assert_eq!(set.resolve(0x110, 0).unwrap().signature, "second");
        assert!(set.resolve(0x130, 0).is_none());
    }

    #[test]
    fn zero_sized_entries_cover_nothing() {
        let set = CodeMapSet::new(vec![EpochMap::new(0, vec![e(0x100, 0, "ghost")])]);
        let f = FlatIndex::build(&set);
        assert!(f.resolve(0x100, 0).is_none());
        assert_eq!(f.segments(), 0);
    }

    #[test]
    fn interning_dedups_signatures_across_epochs() {
        let set = CodeMapSet::new(vec![
            EpochMap::new(0, vec![e(0x100, 0x40, "m"), e(0x200, 0x40, "n")]),
            EpochMap::new(1, vec![e(0x300, 0x40, "m")]),
        ]);
        let f = FlatIndex::build(&set);
        assert_eq!(f.interned_symbols(), 2);
        // The two "m" layers hand out the same allocation.
        let a = f.resolve(0x110, 0).unwrap().clone();
        let b = f.resolve(0x310, 1).unwrap().clone();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn contiguous_identical_layers_merge() {
        // Two adjacent entries with the same signature in the same
        // epoch flatten to a single segment.
        let set = CodeMapSet::new(vec![EpochMap::new(
            0,
            vec![e(0x100, 0x40, "m"), e(0x140, 0x40, "m")],
        )]);
        let f = FlatIndex::build(&set);
        assert_eq!(f.segments(), 1);
        assert_eq!(f.resolve(0x17f, 0).map(|s| &**s), Some("m"));
        assert!(f.resolve(0x180, 0).is_none());
    }

    #[test]
    fn empty_set_resolves_nothing() {
        let f = FlatIndex::build(&CodeMapSet::default());
        assert!(f.resolve_salvage(0x100, 0).is_none());
        assert_eq!(f.segments(), 0);
    }
}
