//! Typed errors for VIProf post-processing.
//!
//! The post-processor reads artifacts written by three independent
//! actors (driver, daemon, VM agent) plus whatever a session export put
//! on disk — plenty of ways for an artifact to be absent or damaged.
//! Each failure that *cannot* be degraded around surfaces as one of
//! these variants; everything that can be degraded around (a bad map
//! line, a lost epoch, one pid's unreadable maps) is instead counted in
//! [`crate::resolve::ResolutionQuality`] and resolution continues.

use sim_cpu::Pid;

/// A post-processing failure the resolver could not degrade around.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViprofError {
    /// Host I/O failed while importing/exporting a session directory.
    Io { path: String, detail: String },
    /// A required session artifact is absent from the VFS.
    MissingArtifact { path: String },
    /// An artifact exists but cannot be decoded at all (bad metadata,
    /// non-UTF-8 boot map, corrupt sample database).
    Corrupt { path: String, detail: String },
    /// Map files exist for this pid but not one of them was usable.
    NoUsableMaps { pid: Pid },
    /// A VM tried to register an incarnation the registry cannot
    /// accept: the `(pid, gen)` was already retired or reaped (dead
    /// incarnations never come back), or the generation regresses
    /// behind one the registry has already seen for that pid.
    RegistrationConflict { pid: Pid, gen: u32 },
    /// The session configuration cannot start a profiler at all (no
    /// events, a zero period, a self-contradicting governor). Caught
    /// before any counter is programmed — the alternative is a sampler
    /// that silently never fires.
    InvalidConfig(String),
}

impl std::fmt::Display for ViprofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViprofError::Io { path, detail } => write!(f, "{path}: {detail}"),
            ViprofError::MissingArtifact { path } => {
                write!(f, "{path} missing from session")
            }
            ViprofError::Corrupt { path, detail } => {
                write!(f, "{path} is corrupt: {detail}")
            }
            ViprofError::NoUsableMaps { pid } => {
                write!(f, "pid {}: map files exist but none is usable", pid.0)
            }
            ViprofError::RegistrationConflict { pid, gen } => {
                write!(
                    f,
                    "pid {} gen {gen}: registration conflicts with a \
                     known incarnation of this pid",
                    pid.0
                )
            }
            ViprofError::InvalidConfig(why) => {
                write!(f, "invalid session config: {why}")
            }
        }
    }
}

impl std::error::Error for ViprofError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_artifact() {
        let e = ViprofError::MissingArtifact {
            path: "/meta/images.json".into(),
        };
        assert_eq!(e.to_string(), "/meta/images.json missing from session");
        let e = ViprofError::NoUsableMaps { pid: Pid(12) };
        assert!(e.to_string().contains("pid 12"));
        let e = ViprofError::InvalidConfig("no events".into());
        assert_eq!(e.to_string(), "invalid session config: no events");
        let e = ViprofError::RegistrationConflict {
            pid: Pid(5),
            gen: 2,
        };
        assert!(e.to_string().contains("pid 5 gen 2"));
    }

    #[test]
    fn is_a_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ViprofError::Corrupt {
            path: "/x".into(),
            detail: "bad".into(),
        });
    }
}
