//! The vertically integrated report — the paper's Figure 1 (upper
//! half): VM-internal methods (`RVM.map`), JIT'd application methods
//! (`JIT.App`), native libraries and kernel symbols, side by side with
//! per-event percentage columns.
//!
//! This is the *reference* path: per-bucket label closures over the
//! legacy epoch walk. Production post-processing goes through
//! [`crate::engine::ResolutionEngine::report_with_quality`], which must
//! produce bit-identical output (enforced by the engine tests, the
//! fault-matrix suite and `tests/prop_resolve_flat.rs`).

use crate::resolve::ViprofResolver;
use oprofile::report::{aggregate, Report, ReportOptions};
use oprofile::SampleDb;
use sim_os::Kernel;

/// Produce the merged VIProf report from a sample database (reference
/// single-threaded walk).
pub fn viprof_report(
    db: &SampleDb,
    kernel: &Kernel,
    resolver: &ViprofResolver,
    options: &ReportOptions,
) -> Report {
    aggregate(db, options, |bucket| resolver.label(bucket, kernel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codemap::{map_path, render_map, CodeMapEntry};
    use oprofile::{SampleBucket, SampleOrigin};
    use sim_cpu::HwEvent;
    use sim_jvm::bootimage::{well_known, BOOT_IMAGE_NAME};
    use sim_jvm::BootImage;

    #[test]
    fn figure1_shape_rvm_jit_and_libc_rows_coexist() {
        let mut k = Kernel::new();
        let pid = k.spawn("jikesrvm");
        let mut boot = BootImage::jikes_standard();
        boot.install(&mut k, pid, 0x0900_0000);
        let libc = k.images.insert(
            sim_os::Image::new("libc-2.3.2.so", 0x4000)
                .with_symbols([sim_os::Symbol::new("memset", 0x1000, 0x400)]),
        );
        k.vfs.write(
            map_path(pid, 0),
            render_map(&[CodeMapEntry {
                addr: 0x6400_0040,
                size: 0x100,
                level: "O2".into(),
                signature: "dacapo.ps.Scanner.parseLine".into(),
            }])
            .into_bytes(),
        );

        let boot_id = k.images.find_by_name(BOOT_IMAGE_NAME).unwrap();
        let mut db = SampleDb::new();
        let mut add = |origin, addr, event, n| {
            db.add(
                SampleBucket {
                    origin,
                    event,
                    addr,
                    epoch: 0,
                },
                n,
            )
        };
        // VM-internal time (interpreter method at offset 0).
        add(SampleOrigin::Image(boot_id), 0x10, HwEvent::Cycles, 30);
        // JIT'd app method.
        add(SampleOrigin::JitApp { pid, gen: 0 }, 0x6400_0080, HwEvent::Cycles, 50);
        add(SampleOrigin::JitApp { pid, gen: 0 }, 0x6400_0080, HwEvent::L2Miss, 5);
        // Native memset with heavy misses (the paper's top Dmiss row).
        add(SampleOrigin::Image(libc), 0x1100, HwEvent::Cycles, 20);
        add(SampleOrigin::Image(libc), 0x1100, HwEvent::L2Miss, 15);

        let resolver = ViprofResolver::load_with(&k, crate::resolve::ResolveOptions::default())
            .unwrap()
            .0;
        let r = viprof_report(&db, &k, &resolver, &ReportOptions::default());

        let jit = r.find("JIT.App", "dacapo.ps.Scanner.parseLine").unwrap();
        assert_eq!(jit.counts, vec![50, 5]);
        let vm = r.find("RVM.map", well_known::INTERPRET).unwrap();
        assert_eq!(vm.counts, vec![30, 0]);
        let memset = r.find("libc-2.3.2.so", "memset").unwrap();
        assert!((memset.percents[1] - 75.0).abs() < 1e-9, "Dmiss-dominant");
        // Figure-1 text shape.
        let text = r.render_text();
        assert!(text.contains("Time %"));
        assert!(text.contains("Dmiss %"));
        assert!(text.contains("RVM.map"));
        assert!(text.contains("JIT.App"));
        assert!(text.contains("memset"));
    }
}
