//! The parallel resolution engine: flattened epoch indexes + interned
//! symbols + sharded multi-threaded aggregation.
//!
//! [`crate::resolve::ViprofResolver`] is the *reference*
//! implementation: per-bucket backward epoch walks and `String`
//! labels. [`ResolutionEngine`] is the production path built on top of
//! it:
//!
//! 1. every pid's epoch chain is collapsed into a
//!    [`FlatIndex`](crate::flatindex::FlatIndex) (one binary search per
//!    lookup instead of one per epoch), and the boot-image map is
//!    flattened the same way;
//! 2. labels resolve to interned [`Arc<str>`] pairs once per code-map
//!    entry instead of allocating per bucket;
//! 3. the sample database is partitioned by bucket hash and the shards
//!    are resolved concurrently via [`std::thread::scope`] against the
//!    shared immutable index; per-shard
//!    [`ResolutionQuality`] tallies and row aggregates merge with plain
//!    commutative sums.
//!
//! The engine produces **bit-identical** reports and quality totals
//! regardless of thread count, and identical to the legacy walk —
//! enforced by `tests/prop_resolve_flat.rs` and the fault-matrix
//! suite.

use crate::bootmap::BootMap;
use crate::flatindex::FlatIndex;
use crate::resolve::{IncarnationSummary, ResolutionQuality, ViprofResolver};
use crate::session::{ReportSpec, SessionReport};
use oprofile::report::{bucket_label, finish_report, report_events, Report, ReportOptions};
use oprofile::{SampleBucket, SampleDb, SampleOrigin, SAMPLE_JOURNAL_PATH, TIMELINE_PATH};
use sim_cpu::{HwEvent, Pid, ProcKey};
use sim_jvm::bootimage::{BOOT_IMAGE_NAME, RVM_MAP_IMAGE_LABEL};
use sim_os::journal::{self, split_traced_payload, KIND_SAMPLE_BATCH_TRACED};
use sim_os::{ImageId, Kernel};
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use viprof_telemetry::{
    names, Counter, Gauge, HealthReport, Histogram, LineageTable, SpanStore, Stage, Telemetry,
    Timeline, TraceCtx, TraceLayer, TraceSnapshot, DEFAULT_SPAN_CAPACITY,
};

/// How a bucket classified, mirroring the [`ResolutionQuality`]
/// buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Class {
    Resolved,
    Stale,
    Unresolved,
    /// The sample's incarnation has no maps while another incarnation
    /// of the same pid does — refused, never cross-resolved.
    Blocked,
}

/// Per-shard partial sums; merged by addition, so the totals are
/// independent of the partition.
#[derive(Debug, Clone, Copy, Default)]
struct ShardTally {
    resolved: u64,
    stale_epoch: u64,
    unresolved: u64,
    /// Samples whose shard panicked twice (worker + fallback): kept in
    /// the accounting so the report never silently shrinks.
    quarantined: u64,
    /// Samples refused by the cross-incarnation isolation invariant.
    blocked: u64,
}

/// Deterministic shard-poison knob (fault-matrix and unit tests): any
/// bucket belonging to `pid` panics mid-resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPoison {
    /// JIT pid whose buckets trip the panic.
    pub pid: Pid,
    /// `false`: panic only inside parallel shard workers, so the
    /// engine's single-threaded fallback re-resolve succeeds and the
    /// report comes out identical to a clean run. `true`: the fallback
    /// panics too and the shard's samples are quarantined.
    pub fatal: bool,
}

/// The engine's resolved telemetry handles. The quality counters are a
/// *second sink* for the same [`ShardTally`] values the merged
/// [`ResolutionQuality`] struct sums — deliberately redundant so
/// [`EngineTelemetry::finish`] can assert the two accountings agree
/// (the struct and the registry can never drift apart silently).
#[derive(Debug, Clone)]
struct EngineTelemetry {
    registry: Telemetry,
    resolved: Counter,
    stale_epoch: Counter,
    unresolved: Counter,
    quarantined: Counter,
    cross_incarnation_blocked: Counter,
    dropped: Counter,
    evicted: Counter,
    quarantined_lines: Counter,
    skipped_map_files: Counter,
    failed_pids: Counter,
    missing_epochs: Counter,
    shard_panics: Counter,
    shards: Gauge,
    shard_samples: Histogram,
    report_stage: Stage,
}

impl EngineTelemetry {
    fn attach(registry: &Telemetry) -> EngineTelemetry {
        EngineTelemetry {
            registry: registry.clone(),
            resolved: registry.counter(names::RESOLVE_SAMPLES_RESOLVED),
            stale_epoch: registry.counter(names::RESOLVE_SAMPLES_STALE_EPOCH),
            unresolved: registry.counter(names::RESOLVE_SAMPLES_UNRESOLVED),
            quarantined: registry.counter(names::RESOLVE_SAMPLES_QUARANTINED),
            cross_incarnation_blocked: registry
                .counter(names::RESOLVE_SAMPLES_CROSS_INCARNATION_BLOCKED),
            dropped: registry.counter(names::RESOLVE_SAMPLES_DROPPED),
            evicted: registry.counter(names::RESOLVE_SAMPLES_EVICTED),
            quarantined_lines: registry.counter(names::RESOLVE_QUARANTINED_LINES),
            skipped_map_files: registry.counter(names::RESOLVE_SKIPPED_MAP_FILES),
            failed_pids: registry.counter(names::RESOLVE_FAILED_PIDS),
            missing_epochs: registry.counter(names::RESOLVE_MISSING_EPOCHS),
            shard_panics: registry.counter(names::RESOLVE_SHARD_PANICS),
            shards: registry.gauge(names::RESOLVE_SHARDS),
            shard_samples: registry.histogram(names::RESOLVE_SHARD_SAMPLES),
            report_stage: registry.stage(names::STAGE_RESOLVE_REPORT),
        }
    }

    /// Current values of the eleven quality counters, in
    /// [`ResolutionQuality`] field order. Taken before a resolve pass
    /// so `finish` can compare deltas (registries may be shared and
    /// pre-used, so absolute values prove nothing).
    fn quality_counts(&self) -> [u64; 11] {
        [
            self.resolved.get(),
            self.stale_epoch.get(),
            self.unresolved.get(),
            self.quarantined.get(),
            self.cross_incarnation_blocked.get(),
            self.dropped.get(),
            self.evicted.get(),
            self.quarantined_lines.get(),
            self.skipped_map_files.get(),
            self.failed_pids.get(),
            self.missing_epochs.get(),
        ]
    }

    /// Second-sink accumulation of one shard tally.
    fn add_tally(&self, t: &ShardTally) {
        self.resolved.add(t.resolved);
        self.stale_epoch.add(t.stale_epoch);
        self.unresolved.add(t.unresolved);
        self.quarantined.add(t.quarantined);
        self.cross_incarnation_blocked.add(t.blocked);
    }

    /// Second-sink accumulation of the static base quality (load-time
    /// damage plus ring-buffer drops and admission-cap evictions).
    fn add_base(&self, base: &ResolutionQuality) {
        self.dropped.add(base.dropped);
        self.evicted.add(base.evicted);
        self.quarantined_lines.add(base.quarantined_lines);
        self.skipped_map_files.add(base.skipped_map_files);
        self.failed_pids.add(base.failed_pids);
        self.missing_epochs.add(base.missing_epochs);
    }

    /// One shard worker died. Counts the panic and records whether the
    /// single-threaded fallback recovered the shard or its samples went
    /// to quarantine.
    fn note_shard_panic(&self, shard: u64, samples: u64, recovered: bool) {
        self.shard_panics.inc();
        self.registry.event(
            names::EVENT_RESOLVE_SHARD_QUARANTINE,
            if recovered {
                "shard panicked; fallback re-resolve recovered it"
            } else {
                "shard panicked twice; samples quarantined"
            },
            &[
                ("shard", shard),
                ("samples", samples),
                ("recovered", recovered as u64),
            ],
        );
    }

    /// Close out one resolve pass: shard-shape metrics, the offline
    /// work-unit stage, and the counter-vs-struct equivalence check.
    fn finish(&self, before: [u64; 11], quality: &ResolutionQuality, shard_sizes: &[u64]) {
        self.shards.set(shard_sizes.len() as u64);
        for &size in shard_sizes {
            self.shard_samples.record(size);
        }
        self.report_stage.record(quality.accounted());
        let after = self.quality_counts();
        let deltas: Vec<u64> = after.iter().zip(before).map(|(a, b)| a - b).collect();
        assert_eq!(
            deltas,
            vec![
                quality.resolved,
                quality.stale_epoch,
                quality.unresolved,
                quality.quarantined,
                quality.cross_incarnation_blocked,
                quality.dropped,
                quality.evicted,
                quality.quarantined_lines,
                quality.skipped_map_files,
                quality.failed_pids,
                quality.missing_epochs,
            ],
            "engine telemetry counters diverged from the merged quality struct"
        );
    }
}

/// Immutable resolution state shared by every shard. Built once from a
/// loaded [`ViprofResolver`]; safe to query from any number of scoped
/// threads.
#[derive(Debug, Default)]
pub struct ResolutionEngine {
    /// Flattened epoch chain per incarnation.
    flat: HashMap<ProcKey, FlatIndex>,
    /// Pids with at least one incarnation in `flat` — the lookup
    /// behind cross-incarnation blocking.
    pids_with_maps: HashSet<u32>,
    /// Flattened boot-image map: disjoint `[start, end)` offset ranges
    /// with interned method names, reproducing `BootMap::resolve`'s
    /// candidate/shadowing behaviour exactly.
    boot_starts: Vec<u64>,
    boot_ends: Vec<u64>,
    boot_names: Vec<Arc<str>>,
    boot_image: Option<ImageId>,
    /// Load-time damage counters (quarantined lines, skipped files,
    /// failed pids, missing epochs) — the static part of every quality
    /// report.
    damage: ResolutionQuality,
    jit_app: Arc<str>,
    unresolved_jit: Arc<str>,
    rvm_map: Arc<str>,
    boot_image_name: Arc<str>,
    no_symbols: Arc<str>,
    /// Resolved handles into an attached registry; `None` keeps the
    /// engine metrics-free (handles never charge simulated cycles
    /// either way).
    telemetry: Option<EngineTelemetry>,
    /// Deterministic panic injector for the quarantine machinery.
    poison: Option<ShardPoison>,
}

impl ResolutionEngine {
    /// An engine with nothing loaded: no indexes, no boot map, zero
    /// damage. The interned constant labels are still real (a derived
    /// `Default` would leave them empty strings) — this is the starting
    /// state [`crate::live::LiveEngine`] grows incrementally.
    pub(crate) fn empty() -> ResolutionEngine {
        ResolutionEngine {
            jit_app: Arc::from("JIT.App"),
            unresolved_jit: Arc::from("(unresolved jit)"),
            rvm_map: Arc::from(RVM_MAP_IMAGE_LABEL),
            boot_image_name: Arc::from(BOOT_IMAGE_NAME),
            no_symbols: Arc::from("(no symbols)"),
            ..ResolutionEngine::default()
        }
    }

    /// Flatten and intern everything the resolver loaded.
    pub fn build(resolver: &ViprofResolver) -> ResolutionEngine {
        let mut engine = ResolutionEngine::empty();
        let mut damage = ResolutionQuality {
            failed_pids: resolver.failed_pids().len() as u64,
            ..ResolutionQuality::default()
        };
        for (key, set) in resolver.sets() {
            damage.quarantined_lines += set.quarantined_lines;
            damage.skipped_map_files += set.skipped_files;
            damage.missing_epochs += set.missing_epochs();
            engine.insert_index(*key, FlatIndex::build(set));
        }
        engine.damage = damage;
        engine.set_boot(resolver.bootmap(), resolver.boot_image_id());
        engine
    }

    /// (Re)flatten the boot-image map with the same candidate rule its
    /// `resolve` applies: last entry per distinct offset, coverage cut
    /// at the next distinct offset. Replaces any previous boot state —
    /// the live path calls this again when `RVM.map` (re)appears
    /// mid-session.
    pub(crate) fn set_boot(&mut self, bootmap: &BootMap, boot_image: Option<ImageId>) {
        let methods = bootmap.methods();
        self.boot_starts.clear();
        self.boot_ends.clear();
        self.boot_names.clear();
        self.boot_image = boot_image;
        let mut i = 0;
        while i < methods.len() {
            let offset = methods[i].offset;
            let mut j = i + 1;
            while j < methods.len() && methods[j].offset == offset {
                j += 1;
            }
            let cand = &methods[j - 1];
            let mut end = offset.saturating_add(cand.size);
            if let Some(next) = methods.get(j) {
                end = end.min(next.offset);
            }
            if end > offset {
                self.boot_starts.push(offset);
                self.boot_ends.push(end);
                self.boot_names.push(Arc::from(cand.name.as_str()));
            }
            i = j;
        }
    }

    /// Install (or replace) one incarnation's flattened index.
    pub(crate) fn insert_index(&mut self, key: ProcKey, index: FlatIndex) {
        self.pids_with_maps.insert(key.pid.0);
        self.flat.insert(key, index);
    }

    /// Remove one incarnation's heavy index (frozen-incarnation drop).
    /// Deliberately leaves `pids_with_maps` alone: the pid *had* maps,
    /// so a straggler sample of another generation must still classify
    /// as blocked, never as merely unresolved.
    pub(crate) fn take_index(&mut self, key: &ProcKey) -> Option<FlatIndex> {
        self.flat.remove(key)
    }

    /// Mutable access to one incarnation's index, for in-place epoch
    /// extension.
    pub(crate) fn index_mut(&mut self, key: &ProcKey) -> Option<&mut FlatIndex> {
        self.flat.get_mut(key)
    }

    /// Replace the load-time damage counters (the live path tracks them
    /// incrementally and installs the totals before each snapshot).
    pub(crate) fn set_damage(&mut self, damage: ResolutionQuality) {
        self.damage = damage;
    }

    /// Install (or clear) the deterministic shard-poison injector.
    pub fn set_poison(&mut self, poison: Option<ShardPoison>) {
        self.poison = poison;
    }

    /// Panic if `bucket` is poisoned in this context — the seam the
    /// quarantine tests drive. A non-fatal poison only trips inside
    /// parallel shard workers, leaving the fallback path clean.
    fn trip_poison(&self, bucket: &SampleBucket, parallel_worker: bool) {
        if let Some(p) = self.poison {
            if let SampleOrigin::JitApp { pid, .. } = bucket.origin {
                if pid == p.pid && (p.fatal || parallel_worker) {
                    panic!("poisoned resolution shard (pid {})", pid.0);
                }
            }
        }
    }

    /// Mirror every subsequent resolve pass into `registry`'s
    /// `resolve.*` metrics. Handles are resolved once here; the sharded
    /// hot path never locks the registry.
    pub fn set_telemetry(&mut self, registry: &Telemetry) {
        self.telemetry = Some(EngineTelemetry::attach(registry));
    }

    /// The flattened index for one incarnation, if its maps loaded. A
    /// bare `Pid` coerces to generation 0.
    pub fn index(&self, key: impl Into<ProcKey>) -> Option<&FlatIndex> {
        self.flat.get(&key.into())
    }

    fn boot_resolve(&self, offset: u64) -> Option<&Arc<str>> {
        let pos = self.boot_starts.partition_point(|s| *s <= offset).checked_sub(1)?;
        (offset < self.boot_ends[pos]).then(|| &self.boot_names[pos])
    }

    /// Classification only — no label allocation. Must stay in
    /// lockstep with [`ViprofResolver::quality`]'s per-bucket match.
    pub(crate) fn classify_bucket(&self, bucket: &SampleBucket) -> Class {
        match bucket.origin {
            SampleOrigin::JitApp { pid, gen } => {
                match self.flat.get(&ProcKey::new(pid, gen)) {
                    Some(f) => match f.resolve_salvage(bucket.addr, bucket.epoch) {
                        Some((_, false)) => Class::Resolved,
                        Some((_, true)) => Class::Stale,
                        None => Class::Unresolved,
                    },
                    None if self.pids_with_maps.contains(&pid.0) => Class::Blocked,
                    None => Class::Unresolved,
                }
            }
            SampleOrigin::Image(_) => Class::Resolved,
            SampleOrigin::Anon { .. } | SampleOrigin::Unknown => Class::Unresolved,
        }
    }

    /// Label one bucket as interned `(image, symbol)` columns —
    /// content-identical to [`ViprofResolver::label`], without the
    /// per-bucket `String` allocations on the hot (JIT / boot-image)
    /// paths.
    pub fn label(&self, bucket: &SampleBucket, kernel: &Kernel) -> (Arc<str>, Arc<str>) {
        match bucket.origin {
            SampleOrigin::Image(id) if Some(id) == self.boot_image => {
                match self.boot_resolve(bucket.addr) {
                    Some(name) => (self.rvm_map.clone(), name.clone()),
                    None => (self.boot_image_name.clone(), self.no_symbols.clone()),
                }
            }
            SampleOrigin::JitApp { pid, gen } => {
                match self
                    .flat
                    .get(&ProcKey::new(pid, gen))
                    .and_then(|f| f.resolve_salvage(bucket.addr, bucket.epoch))
                {
                    Some((sym, _)) => (self.jit_app.clone(), sym.clone()),
                    None => (self.jit_app.clone(), self.unresolved_jit.clone()),
                }
            }
            _ => {
                let (img, sym) = bucket_label(bucket, kernel);
                (Arc::from(img), Arc::from(sym))
            }
        }
    }

    /// Partition the database's buckets into `threads` shards by
    /// bucket hash (one shard — every bucket — when `threads <= 1`).
    fn shard<'db>(
        &self,
        db: &'db SampleDb,
        threads: usize,
    ) -> Vec<Vec<(&'db SampleBucket, u64)>> {
        let n = threads.max(1);
        let mut shards: Vec<Vec<(&SampleBucket, u64)>> = vec![Vec::new(); n];
        if n == 1 {
            shards[0] = db.iter().map(|(b, c)| (b, *c)).collect();
            return shards;
        }
        for (b, c) in db.iter() {
            let mut h = DefaultHasher::new();
            b.hash(&mut h);
            shards[(h.finish() % n as u64) as usize].push((b, *c));
        }
        shards
    }

    fn base_quality(&self, db: &SampleDb) -> ResolutionQuality {
        ResolutionQuality {
            dropped: db.dropped,
            evicted: db.evicted,
            ..self.damage
        }
    }

    /// Resolve one shard: row aggregation keyed by interned labels,
    /// plus the shard's quality tally. Aggregation only covers buckets
    /// whose event is a report column (like [`oprofile::report::aggregate`]);
    /// the tally covers every bucket (like [`ViprofResolver::quality`]).
    fn resolve_shard(
        &self,
        shard: &[(&SampleBucket, u64)],
        kernel: &Kernel,
        events: &[HwEvent],
        parallel_worker: bool,
    ) -> (HashMap<(Arc<str>, Arc<str>), Vec<u64>>, ShardTally) {
        let mut agg: HashMap<(Arc<str>, Arc<str>), Vec<u64>> = HashMap::new();
        let mut tally = ShardTally::default();
        for &(bucket, count) in shard {
            self.trip_poison(bucket, parallel_worker);
            match self.classify_bucket(bucket) {
                Class::Resolved => tally.resolved += count,
                Class::Stale => tally.stale_epoch += count,
                Class::Unresolved => tally.unresolved += count,
                Class::Blocked => tally.blocked += count,
            }
            if let Some(col) = events.iter().position(|e| *e == bucket.event) {
                let key = self.label(bucket, kernel);
                agg.entry(key).or_insert_with(|| vec![0; events.len()])[col] += count;
            }
        }
        (agg, tally)
    }

    fn classify_shard(&self, shard: &[(&SampleBucket, u64)], parallel_worker: bool) -> ShardTally {
        let mut tally = ShardTally::default();
        for &(bucket, count) in shard {
            self.trip_poison(bucket, parallel_worker);
            match self.classify_bucket(bucket) {
                Class::Resolved => tally.resolved += count,
                Class::Stale => tally.stale_epoch += count,
                Class::Unresolved => tally.unresolved += count,
                Class::Blocked => tally.blocked += count,
            }
        }
        tally
    }

    /// Quarantine tally for a shard whose worker *and* fallback died:
    /// every sample is kept in the accounting, none get report rows.
    fn quarantine_tally(shard: &[(&SampleBucket, u64)]) -> ShardTally {
        ShardTally {
            quarantined: shard.iter().map(|(_, c)| *c).sum(),
            ..ShardTally::default()
        }
    }

    /// Resolve `db` into a full [`SessionReport`] under `spec` — the
    /// builder-spec twin of [`Viprof::make_report`](crate::Viprof::make_report)
    /// for callers that already hold a loaded engine. Honors
    /// `spec.poison`, shards across `spec.threads`, and fills the
    /// per-incarnation breakdown; `recovery` is always `None` (replay
    /// is a load-time concern, not the engine's).
    pub fn resolve(&mut self, db: &SampleDb, kernel: &Kernel, spec: &ReportSpec) -> SessionReport {
        self.poison = spec.poison;
        let (lines, quality) = self.resolve_rows(db, kernel, &spec.options, spec.threads);
        let incarnations = self.incarnations(db);
        if let Some(t) = &self.telemetry {
            t.registry
                .counter(names::REPORT_ROWS)
                .add(lines.rows.len() as u64);
            t.registry
                .stage(names::STAGE_REPORT_FINISH)
                .record(lines.rows.len() as u64);
        }
        let telemetry = self
            .telemetry
            .as_ref()
            .map(|t| t.registry.snapshot())
            .unwrap_or_else(|| Telemetry::new().snapshot());
        let (lineage, trace) = if spec.trace {
            Self::lineage_and_trace(kernel, &quality, &incarnations)
        } else {
            (LineageTable::default(), TraceSnapshot::default())
        };
        SessionReport {
            lines,
            quality,
            recovery: None,
            incarnations,
            telemetry,
            lineage,
            trace,
            health: Self::evaluate_health(kernel),
        }
    }

    /// Evaluate the default health rules over the timeline the session
    /// exported at stop. Health is a pure function of that artifact —
    /// not of resolve-time state — so batch reports, sealed-live
    /// snapshots and every thread count agree by construction. Sessions
    /// that exported no timeline (or an unreadable one) report healthy.
    fn evaluate_health(kernel: &Kernel) -> HealthReport {
        kernel
            .vfs
            .read(TIMELINE_PATH)
            .and_then(|raw| std::str::from_utf8(raw).ok())
            .and_then(|json| Timeline::from_json(json).ok())
            .map(|timeline| HealthReport::evaluate(&timeline))
            .unwrap_or_default()
    }

    /// Decompose every [`ResolutionQuality`] loss bucket by causal
    /// span, and record the resolve pass's own span tree.
    ///
    /// The trace runs on a *work-unit pseudo-clock* (one tick per
    /// logical step), never wall or sim time, and never emits
    /// per-worker spans — so the same `(journal, quality,
    /// incarnations)` inputs produce a byte-identical trace at every
    /// thread count, and batch vs sealed-live agree exactly.
    ///
    /// Reconciliation is by construction: dropped/evicted samples are
    /// attributed per traced journal batch (deduplicated by sequence
    /// number) only when the journaled sums do not exceed the
    /// authoritative quality counts; any remainder — or, on
    /// disagreement, the whole count — lands on the ingest span as an
    /// `untraced` row. Per bucket, the lineage total therefore always
    /// equals the quality count exactly.
    fn lineage_and_trace(
        kernel: &Kernel,
        quality: &ResolutionQuality,
        incarnations: &[IncarnationSummary],
    ) -> (LineageTable, TraceSnapshot) {
        use viprof_telemetry::trace::{
            LINEAGE_BLOCKED, LINEAGE_DROPPED, LINEAGE_EVICTED, LINEAGE_QUARANTINED,
        };
        let mut store = SpanStore::new(DEFAULT_SPAN_CAPACITY);
        let mut now = 0u64;
        let (root, _) = store.begin(TraceLayer::Resolve, names::SPAN_RESOLVE, None, now);
        let mut lineage = LineageTable::default();

        // Traced journal batches: `(seq, runtime span ctx, dropped,
        // evicted)`, deduplicated by sequence number (a supervisor
        // replay appends the same seq twice).
        let mut batches: Vec<(u64, TraceCtx, u64, u64)> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        if let Some(scan) = journal::scan(&kernel.vfs, SAMPLE_JOURNAL_PATH) {
            for rec in &scan.records {
                if rec.kind != KIND_SAMPLE_BATCH_TRACED {
                    continue;
                }
                let Some((ctx, body)) = split_traced_payload(&rec.payload) else {
                    continue;
                };
                if !seen.insert(rec.seq) {
                    continue;
                }
                if let Ok(batch) = SampleDb::from_bytes(body) {
                    batches.push((rec.seq, ctx, batch.dropped, batch.evicted));
                }
            }
        }
        let journaled_dropped: u64 = batches.iter().map(|b| b.2).sum();
        let journaled_evicted: u64 = batches.iter().map(|b| b.3).sum();
        let drop_per_batch = journaled_dropped <= quality.dropped;
        let evict_per_batch = journaled_evicted <= quality.evicted;
        let (ingest, _) =
            store.begin(TraceLayer::Resolve, names::SPAN_RESOLVE_INGEST, Some(root), now);
        for (seq, ctx, dropped, evicted) in &batches {
            now += 1;
            let label = format!("journal batch seq {seq}");
            if drop_per_batch {
                lineage.push(
                    LINEAGE_DROPPED,
                    TraceLayer::Journal,
                    Some(*ctx),
                    label.as_str(),
                    *dropped,
                );
            }
            if evict_per_batch {
                lineage.push(LINEAGE_EVICTED, TraceLayer::Journal, Some(*ctx), label, *evicted);
            }
        }
        store.end(ingest, now, &[("batches", batches.len() as u64)]);
        let rem_dropped =
            quality.dropped - if drop_per_batch { journaled_dropped } else { 0 };
        let rem_evicted =
            quality.evicted - if evict_per_batch { journaled_evicted } else { 0 };
        lineage.push(LINEAGE_DROPPED, TraceLayer::Resolve, Some(ingest), "untraced", rem_dropped);
        lineage.push(LINEAGE_EVICTED, TraceLayer::Resolve, Some(ingest), "untraced", rem_evicted);

        // Blocked samples: one row per incarnation, provided the
        // per-row classification reconciles with the merged quality (a
        // quarantined shard hides some classifications — fall back to
        // one aggregate row attributed to the resolve pass).
        let rows_blocked: u64 = incarnations.iter().map(|r| r.blocked).sum();
        if rows_blocked == quality.cross_incarnation_blocked {
            for row in incarnations.iter().filter(|r| r.blocked > 0) {
                let (span, _) = store.begin(
                    TraceLayer::Resolve,
                    names::SPAN_RESOLVE_INCARNATION,
                    Some(root),
                    now,
                );
                now += 1;
                store.end(
                    span,
                    now,
                    &[
                        ("pid", row.pid as u64),
                        ("gen", row.gen as u64),
                        ("blocked", row.blocked),
                    ],
                );
                lineage.push(
                    LINEAGE_BLOCKED,
                    TraceLayer::Resolve,
                    Some(span),
                    format!("pid {} gen {}", row.pid, row.gen),
                    row.blocked,
                );
            }
        } else if quality.cross_incarnation_blocked > 0 {
            let (span, _) = store.begin(
                TraceLayer::Resolve,
                names::SPAN_RESOLVE_INCARNATION,
                Some(root),
                now,
            );
            now += 1;
            store.end(span, now, &[("blocked", quality.cross_incarnation_blocked)]);
            lineage.push(
                LINEAGE_BLOCKED,
                TraceLayer::Resolve,
                Some(span),
                "aggregate",
                quality.cross_incarnation_blocked,
            );
        }

        // Quarantine is a resolve-side loss: one total row against the
        // shard pass (per-worker spans would break thread invariance).
        if quality.quarantined > 0 {
            let (span, _) = store.begin(
                TraceLayer::Resolve,
                names::SPAN_RESOLVE_SHARDS,
                Some(root),
                now,
            );
            now += 1;
            store.end(span, now, &[("quarantined", quality.quarantined)]);
            lineage.push(
                LINEAGE_QUARANTINED,
                TraceLayer::Resolve,
                Some(span),
                "shard quarantine",
                quality.quarantined,
            );
        }
        store.end(
            root,
            now,
            &[
                ("accounted", quality.accounted()),
                ("dropped", quality.dropped),
                ("evicted", quality.evicted),
                ("quarantined", quality.quarantined),
                ("blocked", quality.cross_incarnation_blocked),
            ],
        );
        (lineage, store.snapshot())
    }

    /// Per-incarnation breakdown of `db`'s JIT samples, sorted by
    /// `(pid, gen)`. Classification goes through [`Self::classify_bucket`],
    /// so the rows partition the JIT share of the quality report
    /// exactly like [`ViprofResolver::incarnations`] does. Poison never
    /// trips here — the reference breakdown has no panic seam either.
    fn incarnations(&self, db: &SampleDb) -> Vec<IncarnationSummary> {
        let mut rows: BTreeMap<(u32, u32), IncarnationSummary> = BTreeMap::new();
        for (bucket, count) in db.iter() {
            let SampleOrigin::JitApp { pid, gen } = bucket.origin else {
                continue;
            };
            let row = rows.entry((pid.0, gen)).or_insert_with(|| IncarnationSummary {
                pid: pid.0,
                gen,
                samples: 0,
                resolved: 0,
                stale_epoch: 0,
                unresolved: 0,
                blocked: 0,
            });
            row.samples += count;
            match self.classify_bucket(bucket) {
                Class::Resolved => row.resolved += count,
                Class::Stale => row.stale_epoch += count,
                Class::Unresolved => row.unresolved += count,
                Class::Blocked => row.blocked += count,
            }
        }
        rows.into_values().collect()
    }

    /// One-release alias for the pre-0.3 signature.
    #[deprecated(
        since = "0.3.0",
        note = "use `ResolutionEngine::resolve(db, kernel, &ReportSpec)`"
    )]
    pub fn report_with_quality(
        &self,
        db: &SampleDb,
        kernel: &Kernel,
        options: &ReportOptions,
        threads: usize,
    ) -> (Report, ResolutionQuality) {
        self.resolve_rows(db, kernel, options, threads)
    }

    /// The merged report plus quality accounting in one pass over the
    /// database, resolved across `threads` shards (`0`/`1` =
    /// single-threaded). Results are bit-identical for every thread
    /// count: shard sums are commutative and the final row shaping is
    /// [`finish_report`], the same code `aggregate` runs.
    pub(crate) fn resolve_rows(
        &self,
        db: &SampleDb,
        kernel: &Kernel,
        options: &ReportOptions,
        threads: usize,
    ) -> (Report, ResolutionQuality) {
        let (events, totals) = report_events(db, options);
        let shards = self.shard(db, threads);
        let events_ref: &[HwEvent] = &events;
        // A panicking shard must not take the session report with it:
        // every worker is isolated, and a dead shard is retried once on
        // the legacy single-threaded walk before its samples fall back
        // to quarantine accounting.
        let attempts: Vec<Option<(HashMap<(Arc<str>, Arc<str>), Vec<u64>>, ShardTally)>> =
            if shards.len() <= 1 {
                shards
                    .iter()
                    .map(|s| {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            self.resolve_shard(s, kernel, events_ref, true)
                        }))
                        .ok()
                    })
                    .collect()
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = shards
                        .iter()
                        .map(|shard| {
                            scope.spawn(move || self.resolve_shard(shard, kernel, events_ref, true))
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().ok()).collect()
                })
            };
        let parts: Vec<(HashMap<(Arc<str>, Arc<str>), Vec<u64>>, ShardTally)> = attempts
            .into_iter()
            .enumerate()
            .map(|(i, attempt)| match attempt {
                Some(part) => part,
                None => {
                    let retried = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.resolve_shard(&shards[i], kernel, events_ref, false)
                    }));
                    let recovered = retried.is_ok();
                    if let Some(t) = &self.telemetry {
                        let samples: u64 = shards[i].iter().map(|(_, c)| *c).sum();
                        t.note_shard_panic(i as u64, samples, recovered);
                    }
                    retried.unwrap_or_else(|_| {
                        (HashMap::new(), Self::quarantine_tally(&shards[i]))
                    })
                }
            })
            .collect();

        let before = self.telemetry.as_ref().map(|t| t.quality_counts());
        let shard_sizes: Vec<u64> = shards
            .iter()
            .map(|s| s.iter().map(|(_, c)| *c).sum())
            .collect();
        let mut quality = self.base_quality(db);
        if let Some(t) = &self.telemetry {
            t.add_base(&quality);
        }
        let mut merged: HashMap<(Arc<str>, Arc<str>), Vec<u64>> = HashMap::new();
        for (agg, tally) in parts {
            quality.resolved += tally.resolved;
            quality.stale_epoch += tally.stale_epoch;
            quality.unresolved += tally.unresolved;
            quality.quarantined += tally.quarantined;
            quality.cross_incarnation_blocked += tally.blocked;
            if let Some(t) = &self.telemetry {
                t.add_tally(&tally);
            }
            for (key, counts) in agg {
                match merged.entry(key) {
                    Entry::Occupied(mut e) => {
                        for (a, b) in e.get_mut().iter_mut().zip(&counts) {
                            *a += b;
                        }
                    }
                    Entry::Vacant(v) => {
                        v.insert(counts);
                    }
                }
            }
        }
        if let (Some(t), Some(before)) = (&self.telemetry, before) {
            t.finish(before, &quality, &shard_sizes);
        }
        // One `String` materialization per distinct row — not per
        // bucket — to hand off to the shared row shaping.
        let rows: HashMap<(String, String), Vec<u64>> = merged
            .into_iter()
            .map(|((img, sym), counts)| ((img.to_string(), sym.to_string()), counts))
            .collect();
        (finish_report(events, totals, rows, options), quality)
    }

    /// Quality accounting alone (no label work), sharded the same way.
    /// Identical to [`ViprofResolver::quality`] on the same load.
    pub fn quality(&self, db: &SampleDb, threads: usize) -> ResolutionQuality {
        let shards = self.shard(db, threads);
        let attempts: Vec<Option<ShardTally>> = if shards.len() <= 1 {
            shards
                .iter()
                .map(|s| {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.classify_shard(s, true)
                    }))
                    .ok()
                })
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|shard| scope.spawn(move || self.classify_shard(shard, true)))
                    .collect();
                handles.into_iter().map(|h| h.join().ok()).collect()
            })
        };
        let tallies: Vec<ShardTally> = attempts
            .into_iter()
            .enumerate()
            .map(|(i, attempt)| match attempt {
                Some(tally) => tally,
                None => {
                    let retried = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.classify_shard(&shards[i], false)
                    }));
                    let recovered = retried.is_ok();
                    if let Some(t) = &self.telemetry {
                        let samples: u64 = shards[i].iter().map(|(_, c)| *c).sum();
                        t.note_shard_panic(i as u64, samples, recovered);
                    }
                    retried.unwrap_or_else(|_| Self::quarantine_tally(&shards[i]))
                }
            })
            .collect();
        let before = self.telemetry.as_ref().map(|t| t.quality_counts());
        let shard_sizes: Vec<u64> = shards
            .iter()
            .map(|s| s.iter().map(|(_, c)| *c).sum())
            .collect();
        let mut quality = self.base_quality(db);
        if let Some(t) = &self.telemetry {
            t.add_base(&quality);
        }
        for tally in tallies {
            quality.resolved += tally.resolved;
            quality.stale_epoch += tally.stale_epoch;
            quality.unresolved += tally.unresolved;
            quality.quarantined += tally.quarantined;
            quality.cross_incarnation_blocked += tally.blocked;
            if let Some(t) = &self.telemetry {
                t.add_tally(&tally);
            }
        }
        if let (Some(t), Some(before)) = (&self.telemetry, before) {
            t.finish(before, &quality, &shard_sizes);
        }
        quality
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codemap::{map_path, render_map, CodeMapEntry};
    use crate::report::viprof_report;
    use crate::resolve::ResolveOptions;
    use sim_jvm::BootImage;

    fn bucket(origin: SampleOrigin, addr: u64, epoch: u64) -> SampleBucket {
        SampleBucket {
            origin,
            event: HwEvent::Cycles,
            addr,
            epoch,
        }
    }

    fn setup() -> (Kernel, Pid) {
        let mut k = Kernel::new();
        let pid = k.spawn("jikesrvm");
        let mut boot = BootImage::jikes_standard();
        boot.install(&mut k, pid, 0x0900_0000);
        k.vfs.write(
            map_path(pid, 0),
            render_map(&[CodeMapEntry {
                addr: 0x6400_0040,
                size: 0x80,
                level: "O1".into(),
                signature: "app.Scanner.parseLine".into(),
            }])
            .into_bytes(),
        );
        k.vfs.write(
            map_path(pid, 4),
            render_map(&[CodeMapEntry {
                addr: 0x6500_0000,
                size: 0x40,
                level: "base".into(),
                signature: "app.Late.comer".into(),
            }])
            .into_bytes(),
        );
        (k, pid)
    }

    fn mixed_db(k: &Kernel, pid: Pid) -> SampleDb {
        let boot_id = k.images.find_by_name(BOOT_IMAGE_NAME).unwrap();
        let mut db = SampleDb::new();
        db.add(bucket(SampleOrigin::JitApp { pid, gen: 0 }, 0x6400_0080, 2), 10);
        db.add(bucket(SampleOrigin::JitApp { pid, gen: 0 }, 0x6500_0010, 1), 6);
        db.add(bucket(SampleOrigin::JitApp { pid, gen: 0 }, 0x7000_0000, 0), 3);
        // A stamped generation with no maps of its own: blocked by the
        // isolation invariant, exercised through every engine path.
        db.add(bucket(SampleOrigin::JitApp { pid, gen: 7 }, 0x6400_0080, 2), 2);
        db.add(bucket(SampleOrigin::Image(boot_id), 0x10, 0), 5);
        db.add(bucket(SampleOrigin::Image(k.kernel_image), 0x3000, 0), 4);
        db.add(bucket(SampleOrigin::Unknown, 0x0, 0), 2);
        db.dropped = 7;
        db
    }

    #[test]
    fn labels_match_the_reference_resolver_on_every_origin() {
        let (k, pid) = setup();
        let (resolver, _) = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap();
        let engine = ResolutionEngine::build(&resolver);
        for (b, _) in mixed_db(&k, pid).iter() {
            let (img, sym) = engine.label(b, &k);
            assert_eq!(
                (img.to_string(), sym.to_string()),
                resolver.label(b, &k),
                "label diverged on {b:?}"
            );
        }
    }

    #[test]
    fn quality_matches_the_reference_resolver() {
        let (k, pid) = setup();
        let db = mixed_db(&k, pid);
        let (resolver, _) = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap();
        let engine = ResolutionEngine::build(&resolver);
        let want = resolver.quality(&db);
        assert_eq!(engine.quality(&db, 1), want);
        assert_eq!(engine.quality(&db, 4), want);
        assert_eq!(want.accounted(), db.total_samples());
    }

    #[test]
    fn sharded_report_is_bit_identical_to_walk_and_thread_count_invariant() {
        let (k, pid) = setup();
        let db = mixed_db(&k, pid);
        let (resolver, _) = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap();
        let engine = ResolutionEngine::build(&resolver);
        let options = ReportOptions::default();
        let legacy = viprof_report(&db, &k, &resolver, &options);
        let legacy_q = resolver.quality(&db);
        for threads in [0, 1, 2, 3, 8] {
            let (report, q) = engine.resolve_rows(&db, &k, &options, threads);
            assert_eq!(report, legacy, "threads={threads}");
            assert_eq!(q, legacy_q, "threads={threads}");
        }
    }

    #[test]
    fn row_filters_apply_identically() {
        let (k, pid) = setup();
        let db = mixed_db(&k, pid);
        let (resolver, _) = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap();
        let engine = ResolutionEngine::build(&resolver);
        let options = ReportOptions {
            min_primary_percent: 10.0,
            max_rows: Some(2),
            ..ReportOptions::default()
        };
        let legacy = viprof_report(&db, &k, &resolver, &options);
        let (report, _) = engine.resolve_rows(&db, &k, &options, 4);
        assert_eq!(report, legacy);
        assert!(report.rows.len() <= 2);
    }

    #[test]
    fn telemetry_counters_match_quality_for_every_thread_count() {
        let (k, pid) = setup();
        let db = mixed_db(&k, pid);
        let (resolver, _) = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap();
        for threads in [1, 4] {
            let mut engine = ResolutionEngine::build(&resolver);
            let t = Telemetry::default();
            engine.set_telemetry(&t);
            let (report, q) = engine.resolve_rows(&db, &k, &ReportOptions::default(), threads);
            assert!(!report.rows.is_empty());
            let snap = t.snapshot();
            assert_eq!(snap.counter(names::RESOLVE_SAMPLES_RESOLVED), q.resolved);
            assert_eq!(snap.counter(names::RESOLVE_SAMPLES_STALE_EPOCH), q.stale_epoch);
            assert_eq!(snap.counter(names::RESOLVE_SAMPLES_UNRESOLVED), q.unresolved);
            assert_eq!(snap.counter(names::RESOLVE_SAMPLES_DROPPED), q.dropped);
            assert_eq!(snap.counter(names::RESOLVE_MISSING_EPOCHS), q.missing_epochs);
            assert_eq!(snap.gauge(names::RESOLVE_SHARDS), threads as u64);
            let shard_hist = snap.histogram(names::RESOLVE_SHARD_SAMPLES).unwrap();
            assert_eq!(shard_hist.count, threads as u64);
            assert_eq!(shard_hist.sum, db.total_samples());
            let stage = snap.stage(names::STAGE_RESOLVE_REPORT).unwrap();
            assert_eq!((stage.entries, stage.cycles), (1, q.accounted()));
        }
        // A shared, pre-used registry still passes the delta assertion
        // and simply accumulates across passes.
        let mut engine = ResolutionEngine::build(&resolver);
        let t = Telemetry::default();
        engine.set_telemetry(&t);
        let q1 = engine.quality(&db, 2);
        let q2 = engine.quality(&db, 3);
        assert_eq!(q1, q2);
        assert_eq!(
            t.snapshot().counter(names::RESOLVE_SAMPLES_RESOLVED),
            2 * q1.resolved
        );
    }

    #[test]
    fn nonfatal_poison_recovers_via_fallback_bit_identically() {
        let (k, pid) = setup();
        let db = mixed_db(&k, pid);
        let (resolver, _) = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap();
        let clean = ResolutionEngine::build(&resolver);
        let options = ReportOptions::default();
        let (clean_report, clean_q) = clean.resolve_rows(&db, &k, &options, 4);
        let mut poisoned = ResolutionEngine::build(&resolver);
        let t = Telemetry::default();
        poisoned.set_telemetry(&t);
        poisoned.set_poison(Some(ShardPoison { pid, fatal: false }));
        let (report, q) = poisoned.resolve_rows(&db, &k, &options, 4);
        assert_eq!(report, clean_report, "fallback must reproduce the clean report");
        assert_eq!(q, clean_q);
        assert_eq!(q.quarantined, 0);
        let snap = t.snapshot();
        assert!(snap.counter(names::RESOLVE_SHARD_PANICS) >= 1);
        let events = snap.events_of(names::EVENT_RESOLVE_SHARD_QUARANTINE);
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .all(|e| e.fields.iter().any(|(k, v)| k == "recovered" && *v == 1)));
    }

    #[test]
    fn fatal_poison_quarantines_without_losing_accounting() {
        let (k, pid) = setup();
        let db = mixed_db(&k, pid);
        let (resolver, _) = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap();
        for threads in [1, 4] {
            let mut engine = ResolutionEngine::build(&resolver);
            let t = Telemetry::default();
            engine.set_telemetry(&t);
            engine.set_poison(Some(ShardPoison { pid, fatal: true }));
            let (_report, q) = engine.resolve_rows(&db, &k, &ReportOptions::default(), threads);
            assert!(q.quarantined > 0, "threads={threads}");
            assert_eq!(
                q.accounted(),
                db.total_samples(),
                "quarantine keeps the accounting complete (threads={threads})"
            );
            let quality_only = engine.quality(&db, threads);
            assert_eq!(quality_only, q, "both paths quarantine identically");
            let snap = t.snapshot();
            assert!(snap.counter(names::RESOLVE_SHARD_PANICS) >= 2, "worker and fallback");
            assert!(snap
                .events_of(names::EVENT_RESOLVE_SHARD_QUARANTINE)
                .iter()
                .any(|e| e.fields.iter().any(|(k, v)| k == "recovered" && *v == 0)));
        }
    }

    #[test]
    fn blocked_samples_agree_with_the_reference_and_stay_accounted() {
        let (k, pid) = setup();
        let db = mixed_db(&k, pid);
        let (resolver, _) = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap();
        let engine = ResolutionEngine::build(&resolver);
        let want = resolver.quality(&db);
        assert_eq!(want.cross_incarnation_blocked, 2);
        for threads in [1, 4] {
            let q = engine.quality(&db, threads);
            assert_eq!(q, want, "threads={threads}");
            assert_eq!(q.accounted(), db.total_samples());
        }
        // The blocked bucket's label never borrows the other
        // incarnation's symbols.
        let blocked = bucket(SampleOrigin::JitApp { pid, gen: 7 }, 0x6400_0080, 2);
        let (img, sym) = engine.label(&blocked, &k);
        assert_eq!((&*img, &*sym), ("JIT.App", "(unresolved jit)"));
    }

    #[test]
    fn evictions_flow_from_db_into_quality() {
        let (k, pid) = setup();
        let mut db = mixed_db(&k, pid);
        db.evicted = 9;
        let (resolver, _) = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap();
        let engine = ResolutionEngine::build(&resolver);
        let q = engine.quality(&db, 2);
        assert_eq!(q.evicted, 9);
        assert_eq!(q, resolver.quality(&db), "legacy walk agrees");
        // Evicted samples sit outside accounted(): they never reached
        // the database, like drops.
        assert_eq!(q.accounted(), db.total_samples());
    }

    #[test]
    fn empty_db_reports_empty_with_damage_counters_intact() {
        let (mut k, pid) = setup();
        // One garbled line so the damage counters are non-zero.
        k.vfs.write(
            map_path(pid, 1),
            b"!! garbage\n0000000065100000 00000040 base app.Ok.fine\n".to_vec(),
        );
        let (resolver, _) = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap();
        let engine = ResolutionEngine::build(&resolver);
        let db = SampleDb::new();
        let (report, q) = engine.resolve_rows(&db, &k, &ReportOptions::default(), 4);
        assert!(report.rows.is_empty());
        assert_eq!(q, resolver.quality(&db));
        assert_eq!(q.quarantined_lines, 1);
    }

    #[test]
    fn lineage_reconciles_with_quality_and_is_thread_invariant() {
        let (k, pid) = setup();
        let mut db = mixed_db(&k, pid);
        db.evicted = 9;
        let (resolver, _) = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap();
        let mut first: Option<SessionReport> = None;
        for threads in [1, 4] {
            let mut engine = ResolutionEngine::build(&resolver);
            let spec = ReportSpec::default().threads(threads);
            let report = engine.resolve(&db, &k, &spec);
            let q = &report.quality;
            assert_eq!(report.lineage.total("dropped"), q.dropped);
            assert_eq!(report.lineage.total("evicted"), q.evicted);
            assert_eq!(report.lineage.total("quarantined"), q.quarantined);
            assert_eq!(
                report.lineage.total("blocked"),
                q.cross_incarnation_blocked
            );
            assert!(report.trace.roots().len() == 1);
            if let Some(prev) = &first {
                assert_eq!(prev.lineage, report.lineage, "threads={threads}");
                assert_eq!(
                    prev.trace.to_chrome_json(),
                    report.trace.to_chrome_json(),
                    "threads={threads}"
                );
            }
            first = Some(report);
        }
        // spec.trace == false skips the pass entirely.
        let mut engine = ResolutionEngine::build(&resolver);
        let report = engine.resolve(&db, &k, &ReportSpec::default().with_trace(false));
        assert_eq!(report.lineage, LineageTable::default());
        assert_eq!(report.trace, TraceSnapshot::default());
    }

    #[test]
    fn lineage_attributes_losses_to_journaled_batches() {
        let (mut k, pid) = setup();
        let mut db = mixed_db(&k, pid);
        db.dropped = 7;
        db.evicted = 4;
        // Two traced journal batches carrying (dropped, evicted) =
        // (3, 1) and (2, 3): dropped sums to 5 < 7 (remainder 2 goes
        // untraced), evicted sums to 4 == 4 (fully attributed).
        let mut writer =
            sim_os::journal::JournalWriter::create(&mut k.vfs, SAMPLE_JOURNAL_PATH);
        let mut batch1 = SampleDb::new();
        batch1.dropped = 3;
        batch1.evicted = 1;
        let mut batch2 = SampleDb::new();
        batch2.dropped = 2;
        batch2.evicted = 3;
        for (i, b) in [&batch1, &batch2].into_iter().enumerate() {
            let ctx = TraceCtx {
                trace: 0xAB,
                span: 0x100 + i as u64,
            };
            writer.append(
                &mut k.vfs,
                KIND_SAMPLE_BATCH_TRACED,
                &journal::encode_traced_payload(ctx, &b.to_bytes()),
            );
        }
        let (resolver, _) = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap();
        let mut engine = ResolutionEngine::build(&resolver);
        let report = engine.resolve(&db, &k, &ReportSpec::default());
        assert_eq!(report.lineage.total("dropped"), 7);
        assert_eq!(report.lineage.total("evicted"), 4);
        let text = report.lineage.render_text();
        assert!(text.contains("journal batch seq"), "{text}");
        assert!(text.contains("untraced"), "{text}");
    }
}
