//! The VM registration table shared between the VM Agent (writer) and
//! the extended NMI logging path (reader).
//!
//! Paper §3: "we extend this daemon by a mechanism that allows a VM to
//! register the fact that it is executing dynamically generated code.
//! The virtual machine also registers the boundaries of its memory
//! heap." The epoch counter lives here too, updated by the agent at
//! each GC and read at NMI time to tag `JIT.App` samples.

use parking_lot::RwLock;
use sim_cpu::{Addr, Pid};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One registered VM.
#[derive(Debug)]
pub struct VmRegistration {
    pub pid: Pid,
    pub heap_range: (Addr, Addr),
    epoch: AtomicU64,
}

impl VmRegistration {
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }
}

/// Registration table. Registrations are few (one per VM), so lookups
/// are a linear scan — cheap enough for the NMI path, which is the
/// point of the design.
#[derive(Debug, Default)]
pub struct JitRegistry {
    vms: Vec<VmRegistration>,
}

/// The shared handle both sides hold.
pub type SharedRegistry = Arc<RwLock<JitRegistry>>;

impl JitRegistry {
    pub fn new() -> Self {
        JitRegistry::default()
    }

    pub fn shared() -> SharedRegistry {
        Arc::new(RwLock::new(JitRegistry::new()))
    }

    /// Register a VM's heap. Re-registering a PID replaces the range
    /// (a VM may grow its heap).
    pub fn register(&mut self, pid: Pid, heap_range: (Addr, Addr)) {
        assert!(heap_range.0 < heap_range.1, "empty heap range");
        if let Some(r) = self.vms.iter_mut().find(|r| r.pid == pid) {
            r.heap_range = heap_range;
            return;
        }
        self.vms.push(VmRegistration {
            pid,
            heap_range,
            epoch: AtomicU64::new(0),
        });
    }

    pub fn unregister(&mut self, pid: Pid) -> bool {
        let before = self.vms.len();
        self.vms.retain(|r| r.pid != pid);
        self.vms.len() != before
    }

    /// Bump the epoch for `pid` (called by the agent at GC end).
    pub fn set_epoch(&self, pid: Pid, epoch: u64) {
        if let Some(r) = self.vms.iter().find(|r| r.pid == pid) {
            r.epoch.store(epoch, Ordering::Relaxed);
        }
    }

    /// NMI-path check: is `pc` inside `pid`'s registered heap? Returns
    /// the current epoch if so.
    pub fn classify(&self, pid: Pid, pc: Addr) -> Option<u64> {
        self.vms
            .iter()
            .find(|r| r.pid == pid && pc >= r.heap_range.0 && pc < r.heap_range.1)
            .map(|r| r.epoch())
    }

    pub fn is_registered(&self, pid: Pid) -> bool {
        self.vms.iter().any(|r| r.pid == pid)
    }

    pub fn len(&self) -> usize {
        self.vms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }

    pub fn registrations(&self) -> &[VmRegistration] {
        &self.vms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_classify() {
        let mut r = JitRegistry::new();
        r.register(Pid(5), (0x6000_0000, 0x6400_0000));
        assert_eq!(r.classify(Pid(5), 0x6200_0000), Some(0));
        assert_eq!(r.classify(Pid(5), 0x5fff_ffff), None, "below range");
        assert_eq!(r.classify(Pid(5), 0x6400_0000), None, "end exclusive");
        assert_eq!(r.classify(Pid(6), 0x6200_0000), None, "other pid");
    }

    #[test]
    fn epochs_update_and_tag() {
        let mut r = JitRegistry::new();
        r.register(Pid(5), (0x1000, 0x2000));
        r.set_epoch(Pid(5), 7);
        assert_eq!(r.classify(Pid(5), 0x1800), Some(7));
        // Unknown pid is a no-op.
        r.set_epoch(Pid(9), 3);
    }

    #[test]
    fn reregistration_replaces_range() {
        let mut r = JitRegistry::new();
        r.register(Pid(5), (0x1000, 0x2000));
        r.set_epoch(Pid(5), 4);
        r.register(Pid(5), (0x1000, 0x4000));
        assert_eq!(r.len(), 1);
        // Epoch survives the re-registration.
        assert_eq!(r.classify(Pid(5), 0x3000), Some(4));
    }

    #[test]
    fn multiple_vms_coexist() {
        let mut r = JitRegistry::new();
        r.register(Pid(1), (0x1000, 0x2000));
        r.register(Pid(2), (0x1000, 0x2000));
        r.set_epoch(Pid(2), 9);
        assert_eq!(r.classify(Pid(1), 0x1500), Some(0));
        assert_eq!(r.classify(Pid(2), 0x1500), Some(9));
        assert!(r.unregister(Pid(1)));
        assert!(!r.unregister(Pid(1)));
        assert_eq!(r.len(), 1);
    }
}
