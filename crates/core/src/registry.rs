//! The VM registration table shared between the VM Agent (writer) and
//! the extended NMI logging path (reader).
//!
//! Paper §3: "we extend this daemon by a mechanism that allows a VM to
//! register the fact that it is executing dynamically generated code.
//! The virtual machine also registers the boundaries of its memory
//! heap." The epoch counter lives here too, updated by the agent at
//! each GC and read at NMI time to tag `JIT.App` samples.
//!
//! Registrations are *generation-tagged*: each incarnation of a pid
//! registers as `(pid, gen)` and moves through a three-state lifecycle:
//!
//! - **live** — claiming NMI samples and admitting drained ones;
//! - **retired** — the VM exited gracefully (`on_vm_exit` wrote its
//!   final map first), so late samples still in the ring remain
//!   resolvable against the flushed maps;
//! - **reaped** — the process died unclean (the daemon noticed its pid
//!   gone, or a newer incarnation supplanted it). Its late samples are
//!   refused at drain admission and become `dropped` — they must never
//!   resolve against a successor's maps.

use crate::error::ViprofError;
use parking_lot::RwLock;
use sim_cpu::{Addr, Pid};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One registered VM incarnation.
#[derive(Debug)]
pub struct VmRegistration {
    pub pid: Pid,
    /// Kernel generation of this incarnation of the pid.
    pub gen: u32,
    pub heap_range: (Addr, Addr),
    epoch: AtomicU64,
}

impl VmRegistration {
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }
}

/// What `register` did with an acceptable registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterOutcome {
    /// First time this `(pid, gen)` was seen.
    Fresh,
    /// The live incarnation re-registered (heap growth); its epoch
    /// survives.
    Resumed,
    /// A newer incarnation displaced a live older one — the old one is
    /// implicitly reaped (its process must be gone for the kernel to
    /// have reused the pid).
    Supplanted { prior_gen: u32 },
}

/// Registration table. Registrations are few (one per VM), so lookups
/// are a linear scan — cheap enough for the NMI path, which is the
/// point of the design.
#[derive(Debug, Default)]
pub struct JitRegistry {
    vms: Vec<VmRegistration>,
    /// `(pid, gen)` of incarnations that exited gracefully.
    retired: BTreeSet<(u32, u32)>,
    /// `(pid, gen)` of incarnations that died unclean.
    reaped: BTreeSet<(u32, u32)>,
}

/// The shared handle both sides hold.
pub type SharedRegistry = Arc<RwLock<JitRegistry>>;

impl JitRegistry {
    pub fn new() -> Self {
        JitRegistry::default()
    }

    pub fn shared() -> SharedRegistry {
        Arc::new(RwLock::new(JitRegistry::new()))
    }

    /// Highest generation the table has seen for `pid`, across live,
    /// retired and reaped incarnations.
    fn max_known_gen(&self, pid: Pid) -> Option<u32> {
        let live = self.vms.iter().filter(|r| r.pid == pid).map(|r| r.gen);
        let dead = self
            .retired
            .iter()
            .chain(self.reaped.iter())
            .filter(|(p, _)| *p == pid.0)
            .map(|(_, g)| *g);
        live.chain(dead).max()
    }

    /// Register a VM incarnation's heap. Re-registering the live
    /// `(pid, gen)` replaces the range (a VM may grow its heap) and
    /// keeps its epoch; a *newer* generation supplants a live older
    /// one. Registering a generation the table already saw die —
    /// retired, reaped, or older than any known incarnation of the
    /// pid — is a [`ViprofError::RegistrationConflict`].
    pub fn register(
        &mut self,
        pid: Pid,
        gen: u32,
        heap_range: (Addr, Addr),
    ) -> Result<RegisterOutcome, ViprofError> {
        assert!(heap_range.0 < heap_range.1, "empty heap range");
        if self.retired.contains(&(pid.0, gen)) || self.reaped.contains(&(pid.0, gen)) {
            return Err(ViprofError::RegistrationConflict { pid, gen });
        }
        if let Some(i) = self.vms.iter().position(|r| r.pid == pid) {
            let live_gen = self.vms[i].gen;
            return if live_gen == gen {
                self.vms[i].heap_range = heap_range;
                Ok(RegisterOutcome::Resumed)
            } else if live_gen < gen {
                // The pid was reused, so its previous owner is dead
                // even if no reap pass ran in between.
                self.vms.remove(i);
                self.reaped.insert((pid.0, live_gen));
                self.vms.push(VmRegistration {
                    pid,
                    gen,
                    heap_range,
                    epoch: AtomicU64::new(0),
                });
                Ok(RegisterOutcome::Supplanted {
                    prior_gen: live_gen,
                })
            } else {
                Err(ViprofError::RegistrationConflict { pid, gen })
            };
        }
        if let Some(known) = self.max_known_gen(pid) {
            if gen < known {
                return Err(ViprofError::RegistrationConflict { pid, gen });
            }
        }
        self.vms.push(VmRegistration {
            pid,
            gen,
            heap_range,
            epoch: AtomicU64::new(0),
        });
        Ok(RegisterOutcome::Fresh)
    }

    /// Graceful unregistration (the agent's `on_vm_exit`, after the
    /// final map write): the incarnation moves to *retired*, so its
    /// late samples stay resolvable. Returns `false` if no live
    /// registration held the pid.
    pub fn retire(&mut self, pid: Pid) -> bool {
        match self.vms.iter().position(|r| r.pid == pid) {
            Some(i) => {
                let r = self.vms.remove(i);
                self.retired.insert((r.pid.0, r.gen));
                true
            }
            None => false,
        }
    }

    /// Compatibility alias for [`JitRegistry::retire`].
    pub fn unregister(&mut self, pid: Pid) -> bool {
        self.retire(pid)
    }

    /// Reap live registrations whose process is gone: `is_live(pid,
    /// gen)` consults the kernel's process table. Reaped incarnations
    /// stop admitting samples. Returns how many were reaped.
    pub fn reap(&mut self, is_live: &mut dyn FnMut(Pid, u32) -> bool) -> u64 {
        let mut reaped = 0;
        let mut i = 0;
        while i < self.vms.len() {
            if is_live(self.vms[i].pid, self.vms[i].gen) {
                i += 1;
            } else {
                let r = self.vms.remove(i);
                self.reaped.insert((r.pid.0, r.gen));
                reaped += 1;
            }
        }
        reaped
    }

    /// Drain-time admission check: may a sample stamped `(pid, gen)`
    /// still enter the sample database? Only *reaped* incarnations are
    /// refused — live and retired ones have (or will have) maps to
    /// resolve against, and unknown pids are someone else's problem.
    pub fn admit(&self, pid: Pid, gen: u32) -> bool {
        !self.reaped.contains(&(pid.0, gen))
    }

    /// Bump the epoch for the live incarnation of `pid` (called by the
    /// agent at GC end).
    pub fn set_epoch(&self, pid: Pid, epoch: u64) {
        if let Some(r) = self.vms.iter().find(|r| r.pid == pid) {
            r.epoch.store(epoch, Ordering::Relaxed);
        }
    }

    /// NMI-path check: is `pc` inside `pid`'s registered heap? Returns
    /// the current epoch and the registrant's generation if so — the
    /// generation is what stamps the sample.
    pub fn classify(&self, pid: Pid, pc: Addr) -> Option<(u64, u32)> {
        self.vms
            .iter()
            .find(|r| r.pid == pid && pc >= r.heap_range.0 && pc < r.heap_range.1)
            .map(|r| (r.epoch(), r.gen))
    }

    pub fn is_registered(&self, pid: Pid) -> bool {
        self.vms.iter().any(|r| r.pid == pid)
    }

    pub fn len(&self) -> usize {
        self.vms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }

    pub fn registrations(&self) -> &[VmRegistration] {
        &self.vms
    }

    /// `(pid, gen)` pairs reaped so far (tests/reporting).
    pub fn reaped(&self) -> impl Iterator<Item = (Pid, u32)> + '_ {
        self.reaped.iter().map(|(p, g)| (Pid(*p), *g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_classify() {
        let mut r = JitRegistry::new();
        r.register(Pid(5), 0, (0x6000_0000, 0x6400_0000)).unwrap();
        assert_eq!(r.classify(Pid(5), 0x6200_0000), Some((0, 0)));
        assert_eq!(r.classify(Pid(5), 0x5fff_ffff), None, "below range");
        assert_eq!(r.classify(Pid(5), 0x6400_0000), None, "end exclusive");
        assert_eq!(r.classify(Pid(6), 0x6200_0000), None, "other pid");
    }

    #[test]
    fn epochs_update_and_tag() {
        let mut r = JitRegistry::new();
        r.register(Pid(5), 0, (0x1000, 0x2000)).unwrap();
        r.set_epoch(Pid(5), 7);
        assert_eq!(r.classify(Pid(5), 0x1800), Some((7, 0)));
        // Unknown pid is a no-op.
        r.set_epoch(Pid(9), 3);
    }

    #[test]
    fn reregistration_replaces_range() {
        let mut r = JitRegistry::new();
        assert_eq!(
            r.register(Pid(5), 0, (0x1000, 0x2000)),
            Ok(RegisterOutcome::Fresh)
        );
        r.set_epoch(Pid(5), 4);
        assert_eq!(
            r.register(Pid(5), 0, (0x1000, 0x4000)),
            Ok(RegisterOutcome::Resumed)
        );
        assert_eq!(r.len(), 1);
        // Epoch survives the re-registration.
        assert_eq!(r.classify(Pid(5), 0x3000), Some((4, 0)));
    }

    #[test]
    fn multiple_vms_coexist() {
        let mut r = JitRegistry::new();
        r.register(Pid(1), 0, (0x1000, 0x2000)).unwrap();
        r.register(Pid(2), 0, (0x1000, 0x2000)).unwrap();
        r.set_epoch(Pid(2), 9);
        assert_eq!(r.classify(Pid(1), 0x1500), Some((0, 0)));
        assert_eq!(r.classify(Pid(2), 0x1500), Some((9, 0)));
        assert!(r.unregister(Pid(1)));
        assert!(!r.unregister(Pid(1)));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn new_generation_supplants_live_predecessor() {
        let mut r = JitRegistry::new();
        r.register(Pid(4), 0, (0x1000, 0x2000)).unwrap();
        r.set_epoch(Pid(4), 3);
        assert_eq!(
            r.register(Pid(4), 1, (0x5000, 0x6000)),
            Ok(RegisterOutcome::Supplanted { prior_gen: 0 })
        );
        assert_eq!(r.len(), 1);
        // The successor starts at epoch 0; the predecessor is reaped.
        assert_eq!(r.classify(Pid(4), 0x5800), Some((0, 1)));
        assert!(!r.admit(Pid(4), 0), "supplanted incarnation is reaped");
        assert!(r.admit(Pid(4), 1));
    }

    #[test]
    fn retired_incarnations_still_admit_but_cannot_reregister() {
        let mut r = JitRegistry::new();
        r.register(Pid(7), 0, (0x1000, 0x2000)).unwrap();
        assert!(r.retire(Pid(7)));
        assert!(r.admit(Pid(7), 0), "graceful exit: maps were flushed");
        assert_eq!(
            r.register(Pid(7), 0, (0x1000, 0x2000)),
            Err(ViprofError::RegistrationConflict {
                pid: Pid(7),
                gen: 0
            })
        );
        // The next incarnation registers fine.
        assert_eq!(
            r.register(Pid(7), 1, (0x1000, 0x2000)),
            Ok(RegisterOutcome::Fresh)
        );
    }

    #[test]
    fn reap_moves_dead_processes_out_of_admission() {
        let mut r = JitRegistry::new();
        r.register(Pid(1), 0, (0x1000, 0x2000)).unwrap();
        r.register(Pid(2), 5, (0x1000, 0x2000)).unwrap();
        // Pid(1) died; Pid(2) gen 5 lives on.
        let reaped = r.reap(&mut |pid, gen| pid == Pid(2) && gen == 5);
        assert_eq!(reaped, 1);
        assert_eq!(r.len(), 1);
        assert!(!r.admit(Pid(1), 0));
        assert!(r.admit(Pid(2), 5));
        assert_eq!(r.reaped().collect::<Vec<_>>(), vec![(Pid(1), 0)]);
        // Nothing more to reap.
        assert_eq!(r.reap(&mut |_, _| true), 0);
    }

    #[test]
    fn generation_regression_is_a_conflict() {
        let mut r = JitRegistry::new();
        r.register(Pid(3), 2, (0x1000, 0x2000)).unwrap();
        assert!(matches!(
            r.register(Pid(3), 1, (0x1000, 0x2000)),
            Err(ViprofError::RegistrationConflict { .. })
        ));
        // And after the live one retires, an older gen still conflicts.
        r.retire(Pid(3));
        assert!(matches!(
            r.register(Pid(3), 0, (0x1000, 0x2000)),
            Err(ViprofError::RegistrationConflict { .. })
        ));
    }
}
