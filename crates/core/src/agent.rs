//! The VM Agent: VIProf's library hooked into the VM (paper §3).
//!
//! * compile/recompile hooks log "the beginning address, size and
//!   signature of the method that was just compiled into a buffer";
//! * the GC move hook only *flags* a method as moved ("we simply flag
//!   it instead of actually logging it in order to avoid undue
//!   overhead" — GC bodies are highly tuned);
//! * just before each collection the agent writes the ending epoch's
//!   *partial* code map: methods compiled/recompiled since the previous
//!   write plus methods moved by the previous collection (§3.1);
//! * at VM exit the final partial map is flushed.
//!
//! Every hook returns its cycle cost (from [`sim_cpu::CostModel`]) so
//! agent work lands in simulated time — the VIProf-minus-OProfile delta
//! of Figure 2.

use crate::callgraph::CallGraph;
use crate::codemap::{journal_path, map_path, render_map, CodeMapEntry};
use crate::registry::{RegisterOutcome, SharedRegistry};
use parking_lot::Mutex;
use sim_cpu::{Addr, CostModel, Pid, ProcKey};
use sim_jvm::{CompiledBodyInfo, MethodId, VmProfilerHooks};
use sim_os::journal::{JournalWriter, KIND_CODE_MAP};
use sim_os::{SplitMix64, Vfs};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use viprof_telemetry::{names, Counter, Stage, Telemetry, TraceLayer};

/// Telemetry handles for the agent's map-write path, resolved once.
struct AgentTelemetry {
    registry: Telemetry,
    maps_written: Counter,
    map_entries: Counter,
    gc_epochs: Counter,
    registrations: Counter,
    generation_bumps: Counter,
    map_write_stage: Stage,
}

impl AgentTelemetry {
    fn attach(registry: &Telemetry) -> Self {
        AgentTelemetry {
            registry: registry.clone(),
            maps_written: registry.counter(names::AGENT_MAPS_WRITTEN),
            map_entries: registry.counter(names::AGENT_MAP_ENTRIES),
            gc_epochs: registry.counter(names::AGENT_GC_EPOCHS),
            registrations: registry.counter(names::REGISTRY_REGISTRATIONS),
            generation_bumps: registry.counter(names::REGISTRY_GENERATION_BUMPS),
            map_write_stage: registry.stage(names::STAGE_AGENT_MAP_WRITE),
        }
    }
}

/// Counters for injected map-write faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MapFaultStats {
    /// Epoch maps whose write was swallowed entirely.
    pub lost_maps: u64,
    /// Epoch maps truncated mid-write.
    pub torn_maps: u64,
    /// Individual lines garbled within surviving maps.
    pub garbled_lines: u64,
}

/// Map-write fault injector: the agent-layer leg of a
/// [`crate::faults::FaultPlan`]. Models a VM dying between map writes
/// (lost map), a write cut short by a full disk or kill signal (torn
/// map), and on-disk line damage (garbled lines).
///
/// Stats sit behind a shared handle, like [`AgentStats`]: the injector
/// is boxed into the VM with the agent, and the session keeps a clone.
#[derive(Debug, Clone)]
pub struct MapFaults {
    rng: SplitMix64,
    /// Probability a whole map write is lost.
    pub lose_rate: f64,
    /// Probability a map write is torn (truncated).
    pub tear_rate: f64,
    /// Per-line garble probability in surviving maps.
    pub garble_rate: f64,
    stats: Arc<Mutex<MapFaultStats>>,
}

impl MapFaults {
    pub fn new(seed: u64) -> MapFaults {
        MapFaults {
            rng: SplitMix64::new(seed),
            lose_rate: 0.0,
            tear_rate: 0.0,
            garble_rate: 0.0,
            stats: Default::default(),
        }
    }

    /// Snapshot of the injected-fault counters.
    pub fn stats(&self) -> MapFaultStats {
        *self.stats.lock()
    }

    pub fn with_lost(mut self, rate: f64) -> MapFaults {
        self.lose_rate = rate;
        self
    }

    pub fn with_torn(mut self, rate: f64) -> MapFaults {
        self.tear_rate = rate;
        self
    }

    pub fn with_garbled(mut self, rate: f64) -> MapFaults {
        self.garble_rate = rate;
        self
    }

    /// Pass one rendered map through the fault schedule: `None` means
    /// the write is lost entirely; otherwise the (possibly torn or
    /// line-garbled) bytes to write.
    pub fn corrupt_write(&mut self, rendered: &str) -> Option<Vec<u8>> {
        if self.lose_rate > 0.0 && self.rng.next_f64() < self.lose_rate {
            self.stats.lock().lost_maps += 1;
            return None;
        }
        if self.tear_rate > 0.0 && self.rng.next_f64() < self.tear_rate {
            // A torn write keeps some prefix — cut in the second half so
            // the damage usually lands mid-line.
            self.stats.lock().torn_maps += 1;
            let len = rendered.len() as u64;
            let cut = if len < 2 {
                0
            } else {
                self.rng.range_u64(len / 2, len)
            };
            let mut bytes = rendered.as_bytes().to_vec();
            bytes.truncate(cut as usize);
            return Some(bytes);
        }
        if self.garble_rate > 0.0 {
            let mut garbled = 0u64;
            let mut out = String::with_capacity(rendered.len() + 8);
            for line in rendered.lines() {
                if !line.is_empty() && self.rng.next_f64() < self.garble_rate {
                    // Invalid leading field: the post-processor must
                    // quarantine exactly this line.
                    out.push_str("!! ");
                    garbled += 1;
                }
                out.push_str(line);
                out.push('\n');
            }
            if garbled > 0 {
                self.stats.lock().garbled_lines += garbled;
                return Some(out.into_bytes());
            }
        }
        Some(rendered.as_bytes().to_vec())
    }
}

/// Agent-side counters (tests, ablations, EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentStats {
    pub compiles_logged: u64,
    pub moves_flagged: u64,
    pub maps_written: u64,
    pub entries_written: u64,
    pub call_edges_recorded: u64,
    /// Code-map records committed to the write-ahead journal.
    pub journal_appends: u64,
    /// Torn journal appends caught by read-back verification and
    /// rewritten whole.
    pub journal_repairs: u64,
}

/// Cycles the agent spends recording one sampled call edge.
const CALL_EDGE_CYCLES: u64 = 30;

/// The agent. One per VM; all agents share the [`SharedRegistry`].
pub struct VmAgent {
    registry: SharedRegistry,
    cost: CostModel,
    /// Identity of the incarnation this agent serves, known after
    /// `on_vm_start`. Map and journal paths are namespaced by it, so a
    /// restarted VM (same pid, bumped generation) starts a fresh chain
    /// at epoch 0 without touching its predecessor's files.
    key: Option<ProcKey>,
    /// Current location of every known compiled method ("a list of
    /// known compiled methods", §3).
    current: BTreeMap<MethodId, CodeMapEntry>,
    /// Every compile/recompile event since the last map write — a
    /// method recompiled twice in one epoch contributes *two* entries,
    /// so samples on the superseded body still resolve (§3: the hooks
    /// "log the beginning address, size and signature of the method
    /// that was just compiled into a buffer").
    pending_compiles: Vec<CodeMapEntry>,
    /// Methods moved by the previous collection (flag only).
    moved_flags: BTreeSet<MethodId>,
    /// Precise-move mode: snapshot (addr, size) at move time instead of
    /// reading the method's *current* location at map-write time. The
    /// paper's flag-only protocol (§3) loses samples when a body is
    /// moved by one collection and its method recompiled before the
    /// next map write — the current address then points at the new
    /// body and the moved location is never recorded. The paper
    /// acknowledges the possibility of unresolvable samples (§3.1);
    /// this switch quantifies it (experiment E4).
    precise_moves: bool,
    pending_moves: Vec<CodeMapEntry>,
    /// Optional map-write fault injector (robustness testing).
    map_faults: Option<MapFaults>,
    /// Journal epoch maps to a per-pid write-ahead log alongside the
    /// plain map files.
    journal_enabled: bool,
    /// Lazily created on the first map write (the pid is only known
    /// after `on_vm_start`).
    journal: Option<JournalWriter>,
    /// Optional cross-layer call-graph collector.
    callgraph: Option<Arc<Mutex<CallGraph>>>,
    /// Record every Nth call edge (sampling keeps the inline hook cheap).
    call_sample_interval: u64,
    call_counter: u64,
    telemetry: Option<AgentTelemetry>,
    pub stats: Arc<Mutex<AgentStats>>,
}

impl VmAgent {
    pub fn new(registry: SharedRegistry, cost: CostModel) -> VmAgent {
        VmAgent {
            registry,
            cost,
            key: None,
            current: BTreeMap::new(),
            pending_compiles: Vec::new(),
            moved_flags: BTreeSet::new(),
            precise_moves: false,
            pending_moves: Vec::new(),
            map_faults: None,
            journal_enabled: false,
            journal: None,
            callgraph: None,
            call_sample_interval: 16,
            call_counter: 0,
            telemetry: None,
            stats: Arc::new(Mutex::new(AgentStats::default())),
        }
    }

    /// Mirror map writes and GC epochs into the session's telemetry
    /// registry (a session-built agent gets this automatically).
    pub fn with_telemetry(mut self, registry: &Telemetry) -> VmAgent {
        self.telemetry = Some(AgentTelemetry::attach(registry));
        self
    }

    /// Attach a call-graph collector (records every `interval`-th edge).
    pub fn with_callgraph(mut self, cg: Arc<Mutex<CallGraph>>, interval: u64) -> VmAgent {
        assert!(interval >= 1);
        self.callgraph = Some(cg);
        self.call_sample_interval = interval;
        self
    }

    /// Log moves precisely instead of flag-only (see the field docs).
    pub fn with_precise_moves(mut self, on: bool) -> VmAgent {
        self.precise_moves = on;
        self
    }

    /// Attach a map-write fault injector (robustness testing).
    pub fn with_map_faults(mut self, faults: MapFaults) -> VmAgent {
        self.map_faults = Some(faults);
        self
    }

    /// Journal every epoch map write (crash-consistent persistence).
    pub fn with_journal(mut self, on: bool) -> VmAgent {
        self.journal_enabled = on;
        self
    }

    /// Injected map-fault counters, if an injector is installed.
    pub fn map_fault_stats(&self) -> Option<MapFaultStats> {
        self.map_faults.as_ref().map(|f| f.stats())
    }

    /// Shared stats handle (readable after the agent is boxed into the
    /// VM).
    pub fn stats_handle(&self) -> Arc<Mutex<AgentStats>> {
        self.stats.clone()
    }

    fn write_map(&mut self, epoch: u64, vfs: &mut Vfs) -> u64 {
        // An agent used before `on_vm_start` has nothing to attribute a
        // map to; skip gracefully rather than panicking inside a hook.
        let Some(key) = self.key else { return 0 };
        // Entries: every compile event of the ending epoch, plus the
        // current locations of bodies moved by the previous collection.
        // Keyed by address: a method compiled after being moved shares
        // its current address with its pending entry — one record wins.
        let mut by_addr: BTreeMap<sim_cpu::Addr, CodeMapEntry> = BTreeMap::new();
        for e in self.pending_compiles.drain(..) {
            by_addr.insert(e.addr, e);
        }
        for e in self.pending_moves.drain(..) {
            by_addr.entry(e.addr).or_insert(e);
        }
        for m in &self.moved_flags {
            if let Some(e) = self.current.get(m) {
                by_addr.entry(e.addr).or_insert_with(|| e.clone());
            }
        }
        let entries: Vec<CodeMapEntry> = by_addr.into_values().collect();
        let rendered = render_map(&entries);
        // The fault seam sits between rendering and the VFS: the agent
        // always does (and is charged for) the work; what reaches disk
        // may be lost, torn, or garbled.
        let payload = match &mut self.map_faults {
            Some(f) => f.corrupt_write(&rendered),
            None => Some(rendered.as_bytes().to_vec()),
        };
        if let Some(bytes) = &payload {
            vfs.write(map_path(key, epoch), bytes.clone());
        }
        if self.journal_enabled {
            self.journal_map(key, epoch, &rendered, payload.as_deref(), vfs);
        }
        self.moved_flags.clear();
        let mut st = self.stats.lock();
        st.maps_written += 1;
        st.entries_written += entries.len() as u64;
        drop(st);
        // Journal appends ride the map write's existing I/O budget, so
        // the charged cost is the same with or without journaling.
        let cost = self.cost.map_write(entries.len() as u64);
        if let Some(t) = &self.telemetry {
            t.maps_written.inc();
            t.map_entries.add(entries.len() as u64);
            t.map_write_stage.record(cost);
            t.registry.event(
                names::EVENT_AGENT_MAP_WRITE,
                &map_path(key, epoch),
                &[("epoch", epoch), ("entries", entries.len() as u64)],
            );
            // Causal span: map writes are roots of the epoch's later
            // resolution story, parented under the session span.
            let span = t.registry.trace_begin(
                TraceLayer::Agent,
                names::SPAN_AGENT_MAP_WRITE,
                t.registry.trace_root(),
            );
            t.registry.trace_end(
                span,
                &[
                    ("epoch", epoch),
                    ("entries", entries.len() as u64),
                    ("cost", cost),
                ],
            );
        }
        cost
    }

    /// Mirror one map write into the journal, under the *same* fault
    /// outcome the map file suffered (`damaged` is what actually
    /// reached disk; `None` = the write was lost). No RNG is consumed
    /// here — the one `corrupt_write` draw drives both files, keeping
    /// faulted runs replayable bit for bit.
    ///
    /// * **Lost**: the VM died before either write — no record lands.
    /// * **Torn** (shorter than rendered): the journal record tears at
    ///   the same point, but the commit protocol's read-back check sees
    ///   the missing commit byte and rewrites the record whole. This is
    ///   the case a bare map file cannot recover.
    /// * **Garbled** (same length or longer, different bytes): bit rot
    ///   after commit — write-time verification cannot see it; recovery
    ///   detects the CRC mismatch and truncates the journal there.
    fn journal_map(
        &mut self,
        key: ProcKey,
        epoch: u64,
        rendered: &str,
        damaged: Option<&[u8]>,
        vfs: &mut Vfs,
    ) {
        let Some(damaged) = damaged else { return };
        if self.journal.is_none() {
            let mut writer = JournalWriter::create(vfs, journal_path(key));
            if let Some(t) = &self.telemetry {
                writer.set_telemetry(&t.registry);
            }
            self.journal = Some(writer);
        }
        let journal = self.journal.as_mut().expect("just created");
        // Payload: epoch tag + the pristine rendered map.
        let mut payload = Vec::with_capacity(8 + rendered.len());
        payload.extend_from_slice(&epoch.to_le_bytes());
        payload.extend_from_slice(rendered.as_bytes());
        let mut st = self.stats.lock();
        if damaged.len() < rendered.len() {
            journal.append_torn_then_repair(vfs, KIND_CODE_MAP, &payload, 8 + damaged.len());
            st.journal_repairs += 1;
        } else if damaged != rendered.as_bytes() {
            let mut rot = Vec::with_capacity(payload.len());
            rot.extend_from_slice(&epoch.to_le_bytes());
            rot.extend_from_slice(damaged);
            journal.append_rotted(vfs, KIND_CODE_MAP, &payload, &rot);
        } else {
            journal.append(vfs, KIND_CODE_MAP, &payload);
        }
        st.journal_appends += 1;
    }
}

impl VmProfilerHooks for VmAgent {
    fn on_vm_start(&mut self, pid: Pid, gen: u32, heap_range: (Addr, Addr)) -> u64 {
        let key = ProcKey::new(pid, gen);
        if self.key != Some(key) {
            // A fresh incarnation gets a fresh journal under its own
            // generation directory; the predecessor's file is closed as
            // written.
            self.journal = None;
        }
        self.key = Some(key);
        match self.registry.write().register(pid, gen, heap_range) {
            Ok(outcome) => {
                if let Some(t) = &self.telemetry {
                    t.registrations.inc();
                    if gen > 0 || matches!(outcome, RegisterOutcome::Supplanted { .. }) {
                        t.generation_bumps.inc();
                    }
                    t.registry.event(
                        names::EVENT_REGISTRY_REGISTER,
                        &key.to_string(),
                        &[
                            ("pid", pid.0 as u64),
                            ("gen", gen as u64),
                            ("heap_lo", heap_range.0),
                            ("heap_hi", heap_range.1),
                        ],
                    );
                }
            }
            Err(_) => {
                // A conflicting incarnation (stale gen, zombie restart)
                // must not claim JIT samples — leave it unregistered so
                // its heap stays anonymous, and keep the hook total.
            }
        }
        self.cost.vm_probe_cycles
    }

    fn on_compile(&mut self, info: &CompiledBodyInfo) -> u64 {
        let entry = CodeMapEntry {
            addr: info.addr,
            size: info.size,
            level: info.opt_level.as_str().to_string(),
            signature: info.signature.clone(),
        };
        self.current.insert(info.method, entry.clone());
        self.pending_compiles.push(entry);
        self.stats.lock().compiles_logged += 1;
        self.cost.agent_compile_log_cycles
    }

    fn on_code_moved(&mut self, method: MethodId, _old: Addr, new: Addr, size: u64) -> u64 {
        // Paper behaviour: flag only; the location is read from the
        // known-compiled-methods list at write time.
        if let Some(e) = self.current.get_mut(&method) {
            e.addr = new;
            e.size = size;
        }
        self.moved_flags.insert(method);
        if self.precise_moves {
            // Fix mode: snapshot the moved location now, so a later
            // recompile cannot shadow it.
            if let Some(e) = self.current.get(&method) {
                self.pending_moves.push(e.clone());
            }
        }
        self.stats.lock().moves_flagged += 1;
        self.cost.agent_move_flag_cycles
    }

    fn on_gc_begin(&mut self, ending_epoch: u64, vfs: &mut Vfs) -> u64 {
        self.write_map(ending_epoch, vfs)
    }

    fn on_gc_end(&mut self, new_epoch: u64) -> u64 {
        if let Some(key) = self.key {
            self.registry.read().set_epoch(key.pid, new_epoch);
        }
        if let Some(t) = &self.telemetry {
            t.gc_epochs.inc();
            t.registry.event(
                names::EVENT_AGENT_GC_EPOCH,
                "registry advanced to a new code epoch",
                &[("epoch", new_epoch)],
            );
        }
        0
    }

    fn on_vm_exit(&mut self, final_epoch: u64, vfs: &mut Vfs) -> u64 {
        let cost = self.write_map(final_epoch, vfs);
        // Graceful exit: the final map is on disk, so the registration
        // retires (late in-ring samples stay resolvable) rather than
        // being reaped.
        if let Some(key) = self.key {
            self.registry.write().retire(key.pid);
        }
        cost
    }

    fn on_call(&mut self, caller: Option<&str>, callee: &str) -> u64 {
        let Some(cg) = &self.callgraph else {
            return 0;
        };
        self.call_counter += 1;
        if self.call_counter % self.call_sample_interval != 0 {
            return 0;
        }
        cg.lock().add_edge(caller.unwrap_or("(root)"), callee);
        self.stats.lock().call_edges_recorded += 1;
        CALL_EDGE_CYCLES
    }

    fn on_call_batch(&mut self, caller: Option<&str>, callee: &str, count: u64) -> u64 {
        let Some(cg) = &self.callgraph else {
            return 0;
        };
        // Same sampling rate as the inline path, applied in bulk: the
        // accumulated counter carries remainders across batches.
        self.call_counter += count;
        let recorded = self.call_counter / self.call_sample_interval;
        self.call_counter %= self.call_sample_interval;
        if recorded == 0 {
            return 0;
        }
        cg.lock()
            .add_edge_n(caller.unwrap_or("(root)"), callee, recorded);
        self.stats.lock().call_edges_recorded += recorded;
        recorded * CALL_EDGE_CYCLES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codemap::CodeMapSet;
    use crate::registry::JitRegistry;
    use sim_jvm::OptLevel;

    fn agent() -> (VmAgent, SharedRegistry) {
        let reg = JitRegistry::shared();
        (VmAgent::new(reg.clone(), CostModel::default()), reg)
    }

    fn compile_info(m: u32, addr: Addr, epoch: u64) -> CompiledBodyInfo {
        CompiledBodyInfo {
            method: MethodId(m),
            signature: format!("app.M{m}.run"),
            addr,
            size: 0x40,
            opt_level: OptLevel::Baseline,
            is_recompile: false,
            epoch,
        }
    }

    #[test]
    fn vm_start_registers_heap() {
        let (mut a, reg) = agent();
        a.on_vm_start(Pid(7), 0, (0x6000_0000, 0x6400_0000));
        assert!(reg.read().is_registered(Pid(7)));
        assert_eq!(reg.read().classify(Pid(7), 0x6100_0000), Some((0, 0)));
    }

    #[test]
    fn gc_end_bumps_epoch_in_registry() {
        let (mut a, reg) = agent();
        a.on_vm_start(Pid(7), 0, (0x1000, 0x2000));
        a.on_gc_end(3);
        assert_eq!(reg.read().classify(Pid(7), 0x1800), Some((3, 0)));
    }

    #[test]
    fn partial_maps_contain_only_new_and_moved() {
        let (mut a, _) = agent();
        let mut vfs = Vfs::new();
        a.on_vm_start(Pid(7), 0, (0x1000, 0x2000));
        // Epoch 0: compile A and B.
        a.on_compile(&compile_info(0, 0x1000, 0));
        a.on_compile(&compile_info(1, 0x1100, 0));
        a.on_gc_begin(0, &mut vfs); // map.0: A, B
        // GC 0 moves only A.
        a.on_code_moved(MethodId(0), 0x1000, 0x1800, 0x40);
        a.on_gc_end(1);
        // Epoch 1: compile C.
        a.on_compile(&compile_info(2, 0x1200, 1));
        a.on_gc_begin(1, &mut vfs); // map.1: A (moved), C — NOT B
        let set = CodeMapSet::load(&vfs, Pid(7)).unwrap();
        let map1 = &set.maps()[1];
        assert_eq!(map1.epoch, 1);
        let sigs: Vec<&str> = map1.entries().iter().map(|e| e.signature.as_str()).collect();
        assert_eq!(sigs.len(), 2);
        assert!(sigs.contains(&"app.M0.run"), "moved method present");
        assert!(sigs.contains(&"app.M2.run"), "new compile present");
        assert!(!sigs.contains(&"app.M1.run"), "unmoved, uncompiled B absent");
        // The moved method's entry carries its NEW address.
        let a_entry = map1
            .entries()
            .iter()
            .find(|e| e.signature == "app.M0.run")
            .unwrap();
        assert_eq!(a_entry.addr, 0x1800);
    }

    #[test]
    fn backward_search_needed_for_stable_methods() {
        // B compiled in epoch 0, never moved after: absent from map 1+,
        // so a sample in epoch 1 must chain backwards to map 0.
        let (mut a, _) = agent();
        let mut vfs = Vfs::new();
        a.on_vm_start(Pid(7), 0, (0x1000, 0x2000));
        a.on_compile(&compile_info(1, 0x1100, 0));
        a.on_gc_begin(0, &mut vfs);
        a.on_gc_end(1);
        a.on_vm_exit(1, &mut vfs); // empty map.1
        let set = CodeMapSet::load(&vfs, Pid(7)).unwrap();
        assert_eq!(set.maps()[1].entries().len(), 0);
        let hit = set.resolve(0x1110, 1).expect("backward chain must find B");
        assert_eq!(hit.signature, "app.M1.run");
    }

    #[test]
    fn hook_costs_match_cost_model() {
        let (mut a, _) = agent();
        let cost = CostModel::default();
        let mut vfs = Vfs::new();
        assert_eq!(a.on_vm_start(Pid(1), 0, (0, 0x1000)), cost.vm_probe_cycles);
        assert_eq!(
            a.on_compile(&compile_info(0, 0x10, 0)),
            cost.agent_compile_log_cycles
        );
        assert_eq!(
            a.on_code_moved(MethodId(0), 0x10, 0x20, 0x40),
            cost.agent_move_flag_cycles
        );
        // Two entries: the compile event (old address) and the moved
        // body's current address — both addresses were occupied by this
        // method during the epoch.
        assert_eq!(a.on_gc_begin(0, &mut vfs), cost.map_write(2));
        // Empty map still pays the base write cost.
        assert_eq!(a.on_vm_exit(0, &mut vfs), cost.map_write(0));
    }

    #[test]
    fn call_edges_sampled_at_interval() {
        let cg = Arc::new(Mutex::new(CallGraph::new()));
        let reg = JitRegistry::shared();
        let mut a = VmAgent::new(reg, CostModel::default()).with_callgraph(cg.clone(), 4);
        let mut charged = 0;
        for _ in 0..16 {
            charged += a.on_call(Some("caller"), "callee");
        }
        assert_eq!(cg.lock().total_edges(), 4, "every 4th edge recorded");
        assert_eq!(charged, 4 * CALL_EDGE_CYCLES);
        assert_eq!(a.stats.lock().call_edges_recorded, 4);
    }

    #[test]
    fn stats_handle_survives_boxing() {
        let (a, _) = agent();
        let stats = a.stats_handle();
        let mut boxed: Box<dyn VmProfilerHooks> = Box::new(a);
        boxed.on_compile(&compile_info(0, 0x10, 0));
        assert_eq!(stats.lock().compiles_logged, 1);
    }

    #[test]
    fn lost_map_writes_leave_epoch_gaps() {
        let (mut a, _) = agent();
        a = a.with_map_faults(MapFaults::new(3).with_lost(1.0));
        let faults = a.map_faults.clone().unwrap();
        let mut vfs = Vfs::new();
        a.on_vm_start(Pid(7), 0, (0x1000, 0x2000));
        a.on_compile(&compile_info(0, 0x1000, 0));
        a.on_gc_begin(0, &mut vfs);
        a.on_vm_exit(1, &mut vfs);
        assert!(vfs.is_empty(), "every write swallowed");
        assert_eq!(faults.stats().lost_maps, 2);
        // The agent still believes it wrote (cost charged, stats kept).
        assert_eq!(a.stats.lock().maps_written, 2);
    }

    #[test]
    fn garbled_lines_are_quarantined_not_fatal() {
        let (mut a, _) = agent();
        a = a.with_map_faults(MapFaults::new(5).with_garbled(1.0));
        let faults = a.map_faults.clone().unwrap();
        let mut vfs = Vfs::new();
        a.on_vm_start(Pid(7), 0, (0x1000, 0x2000));
        a.on_compile(&compile_info(0, 0x1000, 0));
        a.on_compile(&compile_info(1, 0x1100, 0));
        a.on_gc_begin(0, &mut vfs);
        assert_eq!(faults.stats().garbled_lines, 2);
        let set = CodeMapSet::load(&vfs, Pid(7)).unwrap();
        assert_eq!(set.quarantined_lines, 2);
        assert_eq!(set.total_entries(), 0);
    }

    #[test]
    fn torn_write_keeps_a_parseable_prefix() {
        let mut f = MapFaults::new(11).with_torn(1.0);
        let rendered = render_map(&[
            CodeMapEntry {
                addr: 0x100,
                size: 0x40,
                level: "base".into(),
                signature: "app.A.run".into(),
            },
            CodeMapEntry {
                addr: 0x200,
                size: 0x40,
                level: "base".into(),
                signature: "app.B.run".into(),
            },
        ]);
        let bytes = f.corrupt_write(&rendered).expect("torn, not lost");
        assert!(bytes.len() < rendered.len(), "something was cut");
        assert!(bytes.len() >= rendered.len() / 2, "cut lands in 2nd half");
        assert_eq!(f.stats().torn_maps, 1);
        // Whatever survived must never panic the lossy parser.
        let parsed = crate::codemap::parse_map(std::str::from_utf8(&bytes).unwrap_or(""));
        assert!(parsed.entries.len() <= 2);
    }

    #[test]
    fn journal_records_carry_pristine_maps() {
        let (mut a, _) = agent();
        a = a.with_journal(true);
        let mut vfs = Vfs::new();
        a.on_vm_start(Pid(7), 0, (0x1000, 0x2000));
        a.on_compile(&compile_info(0, 0x1000, 0));
        a.on_gc_begin(0, &mut vfs);
        a.on_gc_end(1);
        a.on_compile(&compile_info(1, 0x1100, 1));
        a.on_vm_exit(1, &mut vfs);
        let scan = sim_os::journal::scan(&vfs, journal_path(Pid(7))).unwrap();
        assert_eq!(scan.damaged_bytes, 0);
        assert_eq!(scan.records.len(), 2);
        for (rec, epoch) in scan.records.iter().zip([0u64, 1]) {
            assert_eq!(rec.kind, KIND_CODE_MAP);
            assert_eq!(u64::from_le_bytes(rec.payload[..8].try_into().unwrap()), epoch);
            // Journal payload matches the map file byte for byte.
            assert_eq!(
                &rec.payload[8..],
                vfs.read(&map_path(Pid(7), epoch)).unwrap()
            );
        }
        assert_eq!(a.stats.lock().journal_appends, 2);
        assert_eq!(a.stats.lock().journal_repairs, 0);
    }

    #[test]
    fn torn_map_write_is_repaired_in_the_journal() {
        // Tear every map write: the map files on disk are truncated,
        // but the journal's commit protocol catches each torn append
        // and rewrites it — the journal ends up pristine.
        let (mut a, _) = agent();
        a = a
            .with_map_faults(MapFaults::new(11).with_torn(1.0))
            .with_journal(true);
        let faults = a.map_faults.clone().unwrap();
        let mut vfs = Vfs::new();
        a.on_vm_start(Pid(7), 0, (0x1000, 0x2000));
        a.on_compile(&compile_info(0, 0x1000, 0));
        a.on_compile(&compile_info(1, 0x1100, 0));
        a.on_gc_begin(0, &mut vfs);
        assert!(faults.stats().torn_maps >= 1);
        let expected = render_map(&[
            CodeMapEntry {
                addr: 0x1000,
                size: 0x40,
                level: "base".into(),
                signature: "app.M0.run".into(),
            },
            CodeMapEntry {
                addr: 0x1100,
                size: 0x40,
                level: "base".into(),
                signature: "app.M1.run".into(),
            },
        ]);
        // The map file is damaged…
        assert!(vfs.read(&map_path(Pid(7), 0)).unwrap().len() < expected.len());
        // …the journal is not.
        let scan = sim_os::journal::scan(&vfs, journal_path(Pid(7))).unwrap();
        assert_eq!(scan.damaged_bytes, 0);
        assert_eq!(&scan.records[0].payload[8..], expected.as_bytes());
        assert_eq!(a.stats.lock().journal_repairs, 1);
    }

    #[test]
    fn garbled_map_rots_the_journal_record_past_repair() {
        // Bit rot lands after the commit: the writer cannot see it, so
        // the scanner must — CRC mismatch, journal truncated there.
        let (mut a, _) = agent();
        a = a
            .with_map_faults(MapFaults::new(5).with_garbled(1.0))
            .with_journal(true);
        let mut vfs = Vfs::new();
        a.on_vm_start(Pid(7), 0, (0x1000, 0x2000));
        a.on_compile(&compile_info(0, 0x1000, 0));
        a.on_gc_begin(0, &mut vfs);
        let scan = sim_os::journal::scan(&vfs, journal_path(Pid(7))).unwrap();
        assert!(scan.records.is_empty(), "rotted record must not replay");
        assert!(scan.damaged_bytes > 0);
    }

    #[test]
    fn lost_map_write_journals_nothing() {
        let (mut a, _) = agent();
        a = a
            .with_map_faults(MapFaults::new(3).with_lost(1.0))
            .with_journal(true);
        let mut vfs = Vfs::new();
        a.on_vm_start(Pid(7), 0, (0x1000, 0x2000));
        a.on_compile(&compile_info(0, 0x1000, 0));
        a.on_gc_begin(0, &mut vfs);
        // The VM died before either write — even the journal is absent
        // (it is created lazily by the first surviving write).
        assert!(sim_os::journal::scan(&vfs, journal_path(Pid(7))).is_none());
        assert_eq!(a.stats.lock().journal_appends, 0);
    }

    #[test]
    fn telemetry_mirrors_map_writes_and_gc_epochs() {
        let (mut a, _) = agent();
        let t = Telemetry::new();
        a = a.with_telemetry(&t);
        let mut vfs = Vfs::new();
        a.on_vm_start(Pid(7), 0, (0x1000, 0x2000));
        a.on_compile(&compile_info(0, 0x1000, 0));
        a.on_gc_begin(0, &mut vfs);
        a.on_gc_end(1);
        a.on_compile(&compile_info(1, 0x1100, 1));
        a.on_vm_exit(1, &mut vfs);
        let snap = t.snapshot();
        assert_eq!(snap.counter(names::AGENT_MAPS_WRITTEN), 2);
        assert_eq!(snap.counter(names::AGENT_MAP_ENTRIES), 2);
        assert_eq!(snap.counter(names::AGENT_GC_EPOCHS), 1);
        let writes = snap.events_of(names::EVENT_AGENT_MAP_WRITE);
        assert_eq!(writes.len(), 2);
        assert_eq!(writes[0].detail, map_path(Pid(7), 0));
        assert_eq!(snap.events_of(names::EVENT_AGENT_GC_EPOCH).len(), 1);
        let stage = snap.stage(names::STAGE_AGENT_MAP_WRITE).unwrap();
        assert_eq!(stage.entries, 2);
        assert!(stage.cycles > 0);
        // The same run without telemetry is otherwise identical: the
        // stats handle sees the same counts.
        assert_eq!(a.stats.lock().maps_written, 2);
    }

    #[test]
    fn restarted_incarnation_namespaces_maps_and_resets_epochs() {
        let reg = JitRegistry::shared();
        let mut vfs = Vfs::new();
        // Incarnation 0 lives and dies gracefully.
        let mut a0 = VmAgent::new(reg.clone(), CostModel::default()).with_journal(true);
        a0.on_vm_start(Pid(7), 0, (0x1000, 0x2000));
        a0.on_compile(&compile_info(0, 0x1000, 0));
        a0.on_vm_exit(0, &mut vfs);
        assert!(!reg.read().is_registered(Pid(7)), "retired at exit");
        // Incarnation 1 reuses the pid: epoch counter restarts at 0.
        let mut a1 = VmAgent::new(reg.clone(), CostModel::default()).with_journal(true);
        a1.on_vm_start(Pid(7), 1, (0x3000, 0x4000));
        assert_eq!(reg.read().classify(Pid(7), 0x3800), Some((0, 1)));
        a1.on_compile(&compile_info(9, 0x3000, 0));
        a1.on_vm_exit(0, &mut vfs);
        // Each incarnation has its own chain and journal; neither
        // corrupted the other's.
        let g0 = CodeMapSet::load(&vfs, ProcKey::new(Pid(7), 0)).unwrap();
        let g1 = CodeMapSet::load(&vfs, ProcKey::new(Pid(7), 1)).unwrap();
        assert_eq!(g0.resolve(0x1010, 0).unwrap().signature, "app.M0.run");
        assert_eq!(g1.resolve(0x3010, 0).unwrap().signature, "app.M9.run");
        assert!(g0.resolve(0x3010, 0).is_none());
        for gen in [0u32, 1] {
            let scan =
                sim_os::journal::scan(&vfs, journal_path(ProcKey::new(Pid(7), gen))).unwrap();
            assert_eq!(scan.damaged_bytes, 0);
            assert_eq!(scan.records.len(), 1);
        }
    }

    #[test]
    fn conflicting_registration_leaves_heap_anonymous() {
        let reg = JitRegistry::shared();
        // Generation 2 registered and was reaped (unclean death).
        reg.write().register(Pid(4), 2, (0x1000, 0x2000)).unwrap();
        reg.write().reap(&mut |_, _| false);
        // A zombie agent for the dead incarnation comes back: the
        // conflict is swallowed, nothing is registered.
        let mut a = VmAgent::new(reg.clone(), CostModel::default());
        let cost = a.on_vm_start(Pid(4), 2, (0x1000, 0x2000));
        assert_eq!(cost, CostModel::default().vm_probe_cycles);
        assert!(!reg.read().is_registered(Pid(4)));
        assert_eq!(reg.read().classify(Pid(4), 0x1800), None);
    }

    #[test]
    fn map_faults_replay_from_the_seed() {
        let run = |seed| {
            let mut f = MapFaults::new(seed)
                .with_lost(0.3)
                .with_torn(0.3)
                .with_garbled(0.3);
            let rendered = render_map(&[CodeMapEntry {
                addr: 0x100,
                size: 0x40,
                level: "base".into(),
                signature: "app.A.run".into(),
            }]);
            (0..32).map(|_| f.corrupt_write(&rendered)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9), "same seed, same damage");
        assert_ne!(run(9), run(10), "different seed, different damage");
    }
}
