//! # Live incremental resolution
//!
//! The offline pipeline waits for `opcontrol --stop` before it builds
//! flat indexes and resolves the sample database. This module keeps a
//! resolution engine **current while the session runs**: the daemon
//! feeds every drained batch to a [`LiveEngine`] through the
//! [`DrainSink`] seam, and the engine
//!
//! 1. merges the batch into a shadow [`SampleDb`] (the same `merge`
//!    the daemon applies to its own database, so the shadow converges
//!    to the authoritative one bucket-for-bucket);
//! 2. rescans each incarnation's code-map directory and **extends**
//!    its [`FlatIndex`] by the newly appeared epoch maps only —
//!    [`FlatIndex::extend`] re-sweeps just the address window each new
//!    map touches, instead of re-flattening the whole chain;
//! 3. freezes incarnations the kernel no longer knows (exited or
//!    churned VMs): their final rescan has already happened, so their
//!    indexes are immutable from then on — and indexes that never
//!    received a sample are dropped outright.
//!
//! [`LiveEngine::snapshot`] then delegates to
//! [`ResolutionEngine::resolve`] against the shadow database:
//! O(aggregate size) — proportional to the number of distinct buckets
//! and report rows, *independent of epoch depth and of how many
//! samples arrived* — and structurally bit-identical to the batch
//! report because it runs the very same resolve code over the very
//! same inputs.
//!
//! Batches are deduplicated by journal sequence number, so a
//! supervisor-restarted daemon replaying its write-ahead log cannot
//! double-count; [`LiveEngine::seal`] replays any journal records the
//! sink never delivered and does a final rescan, after which the
//! snapshot equals the offline report exactly (`tests/fault_matrix.rs`
//! checks the three-way identity under the full fault matrix).
//!
//! Epoch map files are written once and never mutated (the VM agent
//! creates `map.<epoch>` at epoch boundaries); the rescan relies on
//! that — a path already processed is never re-read.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use oprofile::daemon::DrainSink;
use oprofile::{SampleDb, SampleOrigin, SinkHandle, SAMPLE_JOURNAL_PATH};
use parking_lot::Mutex;
use sim_cpu::ProcKey;
use sim_jvm::bootimage::{BOOT_IMAGE_NAME, RVM_MAP_PATH};
use sim_os::journal::{self, split_traced_payload, KIND_SAMPLE_BATCH, KIND_SAMPLE_BATCH_TRACED};
use sim_os::{ImageId, Kernel};
use viprof_telemetry::{names, Counter, Stage, Telemetry, TraceCtx, TraceLayer};

use crate::bootmap::BootMap;
use crate::codemap::{parse_map, CodeMapSet, EpochMap, JIT_MAP_DIR};
use crate::engine::ResolutionEngine;
use crate::flatindex::FlatIndex;
use crate::resolve::{discover_keys, ResolutionQuality};
use crate::session::{ReportSpec, SessionReport};

/// Tuning for the live engine.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct LiveSpec {
    /// Drop the frozen index of a reaped incarnation that never
    /// received a sample (its rows can never appear in a report).
    /// Indexes of *sampled* incarnations are kept — the shadow
    /// database is cumulative, so they stay resolvable forever.
    pub drop_frozen: bool,
}

impl Default for LiveSpec {
    fn default() -> Self {
        LiveSpec { drop_frozen: true }
    }
}

impl LiveSpec {
    pub fn new() -> LiveSpec {
        LiveSpec::default()
    }

    pub fn with_drop_frozen(mut self, drop: bool) -> Self {
        self.drop_frozen = drop;
        self
    }
}

/// Per-incarnation bookkeeping mirroring what [`CodeMapSet::load`]
/// would tally for the same directory.
#[derive(Debug, Default)]
struct KeyState {
    /// Map-file paths already processed (write-once files).
    files: HashSet<String>,
    /// Epochs of the usable maps flattened so far, ascending — the
    /// live twin of `CodeMapSet::maps()`'s epoch sequence.
    epochs: Vec<u64>,
    /// Bad lines inside otherwise-usable files.
    quarantined_lines: u64,
    /// Files skipped whole (bad epoch suffix, unreadable, non-UTF8).
    skipped_files: u64,
    /// Samples attributed to this incarnation so far.
    samples: u64,
    /// The kernel reaped this incarnation; its final rescan is done.
    frozen: bool,
    /// Frozen with zero samples — index released.
    dropped: bool,
}

impl KeyState {
    /// `CodeMapSet::load` fails (and the batch resolver counts the pid
    /// as failed) exactly when the directory has files but none are
    /// usable.
    fn failed(&self) -> bool {
        !self.files.is_empty() && self.epochs.is_empty()
    }

    fn missing_epochs(&self) -> u64 {
        match self.epochs.last() {
            Some(&last) => (last + 1).saturating_sub(self.epochs.len() as u64),
            None => 0,
        }
    }
}

struct LiveTelemetry {
    registry: Telemetry,
    batches: Counter,
    extends: Counter,
    rebuilds: Counter,
    snapshot_stage: Stage,
}

/// Streaming resolution engine: a shadow sample database plus
/// incrementally maintained flat indexes, able to produce a full
/// [`SessionReport`] at any point mid-run.
pub struct LiveEngine {
    spec: LiveSpec,
    engine: ResolutionEngine,
    db: SampleDb,
    keys: HashMap<ProcKey, KeyState>,
    /// Journal sequence numbers already merged (replay dedup).
    applied: HashSet<u64>,
    /// Batches accepted (post-dedup).
    batches: u64,
    /// `(len, crc32)` of `RVM.map` when the boot map was last loaded.
    boot_fp: Option<(usize, u32)>,
    boot_image: Option<ImageId>,
    sealed: bool,
    telemetry: Option<LiveTelemetry>,
    /// Causal parent for spans emitted during the current ingest: the
    /// daemon's drain span while an `on_batch` is in flight, the
    /// session root during `seal`'s replay, `None` otherwise.
    span_parent: Option<TraceCtx>,
}

impl std::fmt::Debug for LiveEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveEngine")
            .field("batches", &self.batches)
            .field("keys", &self.keys.len())
            .field("samples", &self.db.total_samples())
            .field("sealed", &self.sealed)
            .finish()
    }
}

impl LiveEngine {
    pub fn new(spec: LiveSpec) -> LiveEngine {
        LiveEngine {
            spec,
            engine: ResolutionEngine::empty(),
            db: SampleDb::new(),
            keys: HashMap::new(),
            applied: HashSet::new(),
            batches: 0,
            boot_fp: None,
            boot_image: None,
            sealed: false,
            telemetry: None,
            span_parent: None,
        }
    }

    /// Emit one instant live-layer span (begin == end at the registry's
    /// current sim time), parented to the in-flight drain span when the
    /// daemon provided one, else to the session root.
    fn live_span(&self, name: &'static str, fields: &[(&str, u64)]) {
        if let Some(t) = &self.telemetry {
            let parent = self.span_parent.or_else(|| t.registry.trace_root());
            let ctx = t.registry.trace_begin(TraceLayer::Live, name, parent);
            t.registry.trace_end(ctx, fields);
        }
    }

    /// Share a telemetry registry: live counters, the snapshot stage
    /// timer, flight-recorder events, and the inner engine's
    /// `resolve.*` metrics (which accumulate once per snapshot pass).
    pub fn set_telemetry(&mut self, registry: &Telemetry) {
        self.engine.set_telemetry(registry);
        self.telemetry = Some(LiveTelemetry {
            registry: registry.clone(),
            batches: registry.counter(names::LIVE_BATCHES),
            extends: registry.counter(names::LIVE_INCREMENTAL_EXTENDS),
            rebuilds: registry.counter(names::LIVE_FULL_REBUILDS),
            snapshot_stage: registry.stage(names::STAGE_LIVE_SNAPSHOT),
        });
    }

    /// Mirror the daemon's admission cap so the shadow database evicts
    /// and rejects the same buckets the authoritative one does.
    pub fn set_db_cap(&mut self, cap: Option<usize>) {
        self.db.set_admission_cap(cap);
    }

    /// The shadow sample database (converges to the daemon's).
    pub fn db(&self) -> &SampleDb {
        &self.db
    }

    /// Batches accepted so far (after journal-sequence deduplication).
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Whether [`seal`](Self::seal) has run.
    pub fn sealed(&self) -> bool {
        self.sealed
    }

    /// Wrap a shared engine as a daemon drain sink.
    pub fn sink(engine: Arc<Mutex<LiveEngine>>) -> SinkHandle {
        SinkHandle::new(LiveSink(engine))
    }

    /// Ingest one drained batch: merge samples, extend affected
    /// indexes, freeze reaped incarnations. `seq` is the batch's
    /// journal sequence number when journaling is on; a sequence seen
    /// before (supervisor restart replaying the write-ahead log) is
    /// dropped.
    /// `ctx` is the daemon's drain span: live spans emitted while this
    /// batch is processed (extends, rebuilds, freezes) chain to it.
    pub fn on_batch(
        &mut self,
        kernel: &Kernel,
        seq: Option<u64>,
        batch: &SampleDb,
        ctx: Option<TraceCtx>,
    ) {
        if self.sealed {
            return;
        }
        if let Some(seq) = seq {
            if !self.applied.insert(seq) {
                return;
            }
        }
        self.span_parent = ctx;
        self.batches += 1;
        self.db.merge(batch);
        self.note_samples(kernel, batch);
        self.refresh_boot(kernel);
        self.rescan_all(kernel, false);
        self.freeze_dead(kernel);
        self.span_parent = None;
        if let Some(t) = &self.telemetry {
            t.batches.inc();
            t.registry.event(
                names::EVENT_LIVE_BATCH,
                "live batch ingested",
                &[
                    ("seq", seq.unwrap_or(u64::MAX)),
                    ("journaled", seq.is_some() as u64),
                    ("samples", batch.total_samples()),
                    ("db_buckets", self.db.len() as u64),
                ],
            );
        }
    }

    /// Close the stream: replay journal records the sink never
    /// delivered (deduplicated by sequence number), refresh the boot
    /// map, and rescan every incarnation — frozen ones included — so
    /// the engine reflects the final on-disk state. After sealing,
    /// further batches are ignored and the snapshot is the session's
    /// final report.
    pub fn seal(&mut self, kernel: &Kernel) {
        if self.sealed {
            return;
        }
        self.sealed = true;
        self.span_parent = self
            .telemetry
            .as_ref()
            .and_then(|t| t.registry.trace_root());
        if let Some(scan) = journal::scan(&kernel.vfs, SAMPLE_JOURNAL_PATH) {
            for rec in &scan.records {
                let body = match rec.kind {
                    KIND_SAMPLE_BATCH => Some(&rec.payload[..]),
                    KIND_SAMPLE_BATCH_TRACED => split_traced_payload(&rec.payload).map(|(_, b)| b),
                    _ => None,
                };
                let Some(body) = body else { continue };
                if !self.applied.insert(rec.seq) {
                    continue;
                }
                if let Ok(batch) = SampleDb::from_bytes(body) {
                    self.batches += 1;
                    self.db.merge(&batch);
                    self.note_samples(kernel, &batch);
                }
            }
        }
        self.refresh_boot(kernel);
        self.rescan_all(kernel, true);
        self.span_parent = None;
    }

    /// Produce a full report from the current live state. Runs the
    /// same resolve code as the batch engine over the shadow database,
    /// so a snapshot after [`seal`](Self::seal) is bit-identical to
    /// the offline report. Cost is proportional to the number of
    /// distinct sample buckets plus report rows.
    pub fn snapshot(&mut self, kernel: &Kernel, spec: &ReportSpec) -> SessionReport {
        self.engine.set_damage(self.damage());
        let report = self.engine.resolve(&self.db, kernel, spec);
        if let Some(t) = &self.telemetry {
            t.snapshot_stage.record(0);
            t.registry.event(
                names::EVENT_LIVE_SNAPSHOT,
                "live snapshot",
                &[
                    ("rows", report.lines.rows.len() as u64),
                    ("accounted", report.quality.accounted()),
                    ("batches", self.batches),
                    ("sealed", self.sealed as u64),
                ],
            );
        }
        report
    }

    /// Resolution damage mirroring `ResolutionEngine::build`'s
    /// tally over a full `ViprofResolver::load`: per-key counts are
    /// summed only for incarnations with at least one usable map;
    /// a directory with files but no usable map contributes exactly
    /// one failed pid. (`dropped`/`evicted` come from the database at
    /// resolve time, not from here.)
    fn damage(&self) -> ResolutionQuality {
        let mut damage = ResolutionQuality::default();
        for st in self.keys.values() {
            if st.failed() {
                damage.failed_pids += 1;
            } else if !st.epochs.is_empty() {
                damage.quarantined_lines += st.quarantined_lines;
                damage.skipped_map_files += st.skipped_files;
                damage.missing_epochs += st.missing_epochs();
            }
        }
        damage
    }

    /// Track per-incarnation sample arrival; a sample for a dropped
    /// incarnation (possible only through defensive paths — admission
    /// refuses reaped incarnations) forces its index back via a full
    /// rebuild.
    fn note_samples(&mut self, kernel: &Kernel, batch: &SampleDb) {
        let mut restore: Vec<ProcKey> = Vec::new();
        for (bucket, count) in batch.iter() {
            let SampleOrigin::JitApp { pid, gen } = bucket.origin else {
                continue;
            };
            let key = ProcKey::new(pid, gen);
            let st = self.keys.entry(key).or_default();
            st.samples += count;
            if st.dropped {
                st.dropped = false;
                restore.push(key);
            }
        }
        for key in restore {
            self.rebuild_key(kernel, key);
        }
    }

    /// Reload the flattened boot map when `RVM.map` changed (or first
    /// appeared). The boot-image id is refreshed even when the map
    /// file is absent: boot-image samples are labelled through the
    /// image id regardless of whether any method row matches.
    fn refresh_boot(&mut self, kernel: &Kernel) {
        let boot_image = kernel.images.find_by_name(BOOT_IMAGE_NAME);
        let fp = kernel
            .vfs
            .read(RVM_MAP_PATH)
            .map(|bytes| (bytes.len(), journal::crc32(bytes)));
        if boot_image == self.boot_image && fp == self.boot_fp {
            return;
        }
        self.boot_image = boot_image;
        self.boot_fp = fp;
        let map = BootMap::load(&kernel.vfs).unwrap_or_default();
        self.engine.set_boot(&map, boot_image);
    }

    /// Rescan every known incarnation's map directory, plus any
    /// directories that exist on disk but have produced no samples
    /// yet. Frozen incarnations are skipped mid-run (their final
    /// rescan happened when they were reaped) but revisited at seal
    /// for final-state parity.
    fn rescan_all(&mut self, kernel: &Kernel, include_frozen: bool) {
        let discovered = discover_keys(kernel);
        let mut targets: Vec<(ProcKey, bool)> =
            discovered.iter().map(|&key| (key, true)).collect();
        targets.extend(
            self.keys
                .keys()
                .filter(|key| discovered.binary_search(key).is_err())
                .map(|&key| (key, false)),
        );
        targets.sort_unstable();
        for (key, on_disk) in targets {
            let skip = !include_frozen && self.keys.get(&key).is_some_and(|st| st.frozen);
            if !skip {
                self.rescan_key(kernel, key, on_disk);
            }
        }
    }

    /// Incremental path: process map files not seen before, extending
    /// the incarnation's index one epoch at a time. Falls back to a
    /// full rebuild when a new epoch arrives out of order (older than
    /// an already-flattened one) or an extend refuses.
    fn rescan_key(&mut self, kernel: &Kernel, key: ProcKey, on_disk: bool) {
        let prefix = format!("{}/{}/{}/map.", JIT_MAP_DIR, key.pid.0, key.gen);
        let paths: Vec<String> = kernel
            .vfs
            .list(&prefix)
            .iter()
            .map(|p| p.to_string())
            .collect();
        if paths.is_empty() {
            // A discovered incarnation directory with no map files at
            // all (journal only — every map write torn, say) loads as
            // an *empty* set in the batch path, which still inserts an
            // empty index and claims the pid. Mirror that.
            if on_disk
                && self.engine.index(key).is_none()
                && !self.keys.get(&key).is_some_and(|st| st.dropped)
            {
                self.engine
                    .insert_index(key, FlatIndex::build(&CodeMapSet::default()));
                self.keys.entry(key).or_default();
            }
            return;
        }
        let st = self.keys.entry(key).or_default();
        let mut fresh: Vec<EpochMap> = Vec::new();
        for path in paths {
            if st.files.contains(&path) {
                continue;
            }
            let epoch = path[prefix.len()..].parse::<u64>().ok();
            st.files.insert(path.clone());
            let map = epoch.and_then(|epoch| {
                let text = std::str::from_utf8(kernel.vfs.read(&path)?).ok()?;
                let parsed = parse_map(text);
                st.quarantined_lines += parsed.quarantined;
                Some(EpochMap::new(epoch, parsed.entries))
            });
            match map {
                Some(map) => fresh.push(map),
                None => st.skipped_files += 1,
            }
        }
        if fresh.is_empty() {
            if st.failed() {
                // Every file for this incarnation is unusable: the
                // batch loader errors out and loads no index.
                self.engine.take_index(&key);
            }
            return;
        }
        fresh.sort_by_key(|m| m.epoch);
        let in_order = st
            .epochs
            .last()
            .is_none_or(|&last| fresh[0].epoch >= last);
        if in_order && !st.dropped {
            if self.engine.index(key).is_none() {
                // An extend-grown index must start from the flattened
                // empty set, not `FlatIndex::default()` (the sweep
                // leaves a sentinel layer offset the splice needs).
                self.engine
                    .insert_index(key, FlatIndex::build(&CodeMapSet::default()));
            }
            let mut extended = 0u64;
            let mut ok = true;
            for map in &fresh {
                let ordinal = st.epochs.len() as u32;
                let index = self.engine.index_mut(&key).expect("index just ensured");
                if index.extend(map, ordinal) {
                    st.epochs.push(map.epoch);
                    extended += 1;
                } else {
                    ok = false;
                    break;
                }
            }
            if let Some(t) = &self.telemetry {
                t.extends.add(extended);
            }
            if extended > 0 {
                self.live_span(
                    names::SPAN_LIVE_EXTEND,
                    &[
                        ("pid", key.pid.0 as u64),
                        ("gen", key.gen as u64),
                        ("epochs", extended),
                    ],
                );
            }
            if ok {
                return;
            }
        }
        self.rebuild_key(kernel, key);
    }

    /// Slow path: reload the incarnation from disk exactly the way the
    /// batch resolver does and rebuild its index from scratch.
    fn rebuild_key(&mut self, kernel: &Kernel, key: ProcKey) {
        let prefix = format!("{}/{}/{}/map.", JIT_MAP_DIR, key.pid.0, key.gen);
        let files: HashSet<String> = kernel
            .vfs
            .list(&prefix)
            .iter()
            .map(|p| p.to_string())
            .collect();
        match CodeMapSet::load(&kernel.vfs, key) {
            Ok(set) => {
                let st = self.keys.entry(key).or_default();
                st.files = files;
                st.epochs = set.maps().iter().map(|m| m.epoch).collect();
                st.quarantined_lines = set.quarantined_lines;
                st.skipped_files = set.skipped_files;
                st.dropped = false;
                let epochs = st.epochs.len() as u64;
                self.engine.insert_index(key, FlatIndex::build(&set));
                if let Some(t) = &self.telemetry {
                    t.rebuilds.inc();
                }
                self.live_span(
                    names::SPAN_LIVE_REBUILD,
                    &[
                        ("pid", key.pid.0 as u64),
                        ("gen", key.gen as u64),
                        ("epochs", epochs),
                    ],
                );
            }
            Err(_) => {
                // Directory has files but none usable — the batch
                // resolver counts this incarnation as a failed pid and
                // loads no index.
                let st = self.keys.entry(key).or_default();
                st.files = files;
                st.epochs.clear();
                st.dropped = false;
                self.engine.take_index(&key);
            }
        }
    }

    /// Freeze incarnations the kernel no longer tracks under the same
    /// generation — the reap rule the daemon itself applies. Their
    /// rescan this batch was the final one; a frozen incarnation with
    /// zero samples surrenders its index (when the spec allows).
    fn freeze_dead(&mut self, kernel: &Kernel) {
        let dead: Vec<ProcKey> = self
            .keys
            .iter()
            .filter(|(key, st)| {
                !st.frozen
                    && kernel
                        .process(key.pid)
                        .is_none_or(|proc| proc.gen != key.gen)
            })
            .map(|(key, _)| *key)
            .collect();
        for key in dead {
            let drop_frozen = self.spec.drop_frozen;
            let st = self.keys.get_mut(&key).expect("key collected above");
            st.frozen = true;
            let samples = st.samples;
            let mut dropped = false;
            if drop_frozen && samples == 0 && self.engine.take_index(&key).is_some() {
                st.dropped = true;
                dropped = true;
            }
            if let Some(t) = &self.telemetry {
                t.registry.event(
                    names::EVENT_LIVE_FREEZE,
                    "incarnation frozen",
                    &[
                        ("pid", key.pid.0 as u64),
                        ("gen", key.gen as u64),
                        ("samples", samples),
                        ("dropped", dropped as u64),
                    ],
                );
            }
            self.live_span(
                names::SPAN_LIVE_FREEZE,
                &[
                    ("pid", key.pid.0 as u64),
                    ("gen", key.gen as u64),
                    ("samples", samples),
                    ("dropped", dropped as u64),
                ],
            );
        }
    }
}

/// Adapter feeding daemon drain batches into a shared [`LiveEngine`].
pub struct LiveSink(pub Arc<Mutex<LiveEngine>>);

impl DrainSink for LiveSink {
    fn on_batch(
        &mut self,
        kernel: &Kernel,
        seq: Option<u64>,
        batch: &SampleDb,
        ctx: Option<TraceCtx>,
    ) {
        self.0.lock().on_batch(kernel, seq, batch, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codemap::{map_path, render_map, CodeMapEntry};
    use crate::resolve::{ResolveOptions, ViprofResolver};
    use oprofile::SampleBucket;
    use sim_cpu::HwEvent;

    fn entry(addr: u64, size: u64, sig: &str) -> CodeMapEntry {
        CodeMapEntry {
            addr,
            size,
            level: "opt0".into(),
            signature: sig.into(),
        }
    }

    fn write_map(kernel: &mut Kernel, key: ProcKey, epoch: u64, entries: &[CodeMapEntry]) {
        kernel
            .vfs
            .write(map_path(key, epoch), render_map(entries).into_bytes());
    }

    fn jit_batch(key: ProcKey, addr: u64, epoch: u64, n: u64) -> SampleDb {
        let mut db = SampleDb::new();
        for _ in 0..n {
            db.add(
                SampleBucket {
                    origin: SampleOrigin::JitApp {
                        pid: key.pid,
                        gen: key.gen,
                    },
                    event: HwEvent::Cycles,
                    addr,
                    epoch,
                },
                1,
            );
        }
        db
    }

    fn snap_equals_batch(live: &mut LiveEngine, kernel: &Kernel) {
        let spec = ReportSpec::default();
        let snap = live.snapshot(kernel, &spec);
        let (resolver, _) =
            ViprofResolver::load_with(kernel, ResolveOptions::default()).expect("batch load");
        let mut batch = ResolutionEngine::build(&resolver);
        let offline = batch.resolve(live.db(), kernel, &spec);
        assert_eq!(snap.lines, offline.lines);
        assert_eq!(snap.quality, offline.quality);
        assert_eq!(snap.incarnations, offline.incarnations);
    }

    #[test]
    fn incremental_extends_match_batch() {
        let mut kernel = Kernel::new();
        let pid = kernel.spawn("java");
        let key = ProcKey::from(pid);
        let mut live = LiveEngine::new(LiveSpec::new());

        write_map(&mut kernel, key, 0, &[entry(0x2000_0000, 0x100, "A.run()V")]);
        live.on_batch(&kernel, Some(0), &jit_batch(key, 0x2000_0010, 0, 5), None);
        write_map(&mut kernel, key, 1, &[entry(0x2000_0200, 0x80, "B.run()V")]);
        live.on_batch(&kernel, Some(1), &jit_batch(key, 0x2000_0210, 1, 3), None);

        assert_eq!(live.batches(), 2);
        snap_equals_batch(&mut live, &kernel);
    }

    #[test]
    fn replayed_sequences_are_deduplicated() {
        let mut kernel = Kernel::new();
        let pid = kernel.spawn("java");
        let key = ProcKey::from(pid);
        write_map(&mut kernel, key, 0, &[entry(0x2000_0000, 0x100, "A.run()V")]);

        let mut live = LiveEngine::new(LiveSpec::new());
        let batch = jit_batch(key, 0x2000_0010, 0, 7);
        live.on_batch(&kernel, Some(3), &batch, None);
        live.on_batch(&kernel, Some(3), &batch, None); // supervisor replay
        assert_eq!(live.batches(), 1);
        assert_eq!(live.db().total_samples(), 7);
    }

    #[test]
    fn out_of_order_epoch_forces_rebuild_and_stays_identical() {
        let mut kernel = Kernel::new();
        let pid = kernel.spawn("java");
        let key = ProcKey::from(pid);
        let mut live = LiveEngine::new(LiveSpec::new());

        write_map(&mut kernel, key, 2, &[entry(0x2000_0000, 0x100, "C.run()V")]);
        live.on_batch(&kernel, Some(0), &jit_batch(key, 0x2000_0010, 2, 2), None);
        // An older epoch appears late (torn agent flush): rebuild path.
        write_map(&mut kernel, key, 1, &[entry(0x2000_0000, 0x100, "B.run()V")]);
        live.on_batch(&kernel, Some(1), &jit_batch(key, 0x2000_0010, 1, 2), None);

        snap_equals_batch(&mut live, &kernel);
    }

    #[test]
    fn frozen_unsampled_incarnation_drops_its_index() {
        let mut kernel = Kernel::new();
        let pid = kernel.spawn("java");
        let key = ProcKey::from(pid);
        write_map(&mut kernel, key, 0, &[entry(0x2000_0000, 0x100, "A.run()V")]);

        let other = kernel.spawn("other");
        let mut live = LiveEngine::new(LiveSpec::new());
        live.on_batch(&kernel, Some(0), &jit_batch(key, 0x2000_0010, 0, 4), None);
        kernel.exit_process(pid);
        // Key has samples: frozen but index retained.
        live.on_batch(&kernel, Some(1), &jit_batch(ProcKey::from(other), 0, 0, 0), None);
        assert!(live.keys[&key].frozen);
        assert!(!live.keys[&key].dropped);
        snap_equals_batch(&mut live, &kernel);
    }

    #[test]
    fn seal_replays_missed_journal_batches() {
        use sim_os::journal::JournalWriter;

        let mut kernel = Kernel::new();
        let pid = kernel.spawn("java");
        let key = ProcKey::from(pid);
        write_map(&mut kernel, key, 0, &[entry(0x2000_0000, 0x100, "A.run()V")]);

        let delivered = jit_batch(key, 0x2000_0010, 0, 5);
        let missed = jit_batch(key, 0x2000_0020, 0, 3);
        let mut writer = JournalWriter::create(&mut kernel.vfs, SAMPLE_JOURNAL_PATH);
        let seq0 = writer.append(&mut kernel.vfs, KIND_SAMPLE_BATCH, &delivered.to_bytes());
        writer.append(&mut kernel.vfs, KIND_SAMPLE_BATCH, &missed.to_bytes());

        let mut live = LiveEngine::new(LiveSpec::new());
        live.on_batch(&kernel, Some(seq0), &delivered, None);
        assert_eq!(live.db().total_samples(), 5);
        live.seal(&kernel);
        // The record the sink never saw is merged exactly once.
        assert_eq!(live.db().total_samples(), 8);
        assert_eq!(live.batches(), 2);
        live.seal(&kernel); // idempotent
        assert_eq!(live.db().total_samples(), 8);
        snap_equals_batch(&mut live, &kernel);
    }
}
