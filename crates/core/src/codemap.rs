//! Epoch code maps: the files the VM Agent writes and the
//! epoch-chained lookup the post-processor runs.
//!
//! One map file per execution epoch, each a *partial* map: only
//! methods compiled/recompiled during that epoch plus methods moved by
//! the previous collection (§3.1). Resolution of a sample `(pc, e)`
//! searches map `e`, then `e-1`, `e-2`, … — "the method which the
//! sample will be associated with is the most recently compiled — or
//! moved — method to occupy that address space" (§3.2).

use sim_cpu::{Addr, Pid};
use sim_os::Vfs;

/// VFS directory the agent writes maps under.
pub const JIT_MAP_DIR: &str = "/var/lib/oprofile/jit";

/// One code-body record in a map file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeMapEntry {
    pub addr: Addr,
    pub size: u64,
    /// Tier label, e.g. `base`, `O1`, `O2`.
    pub level: String,
    /// Fully-qualified method signature.
    pub signature: String,
}

impl CodeMapEntry {
    pub fn contains(&self, pc: Addr) -> bool {
        pc >= self.addr && pc < self.addr + self.size
    }
}

/// Map-file path for (pid, epoch). Zero-padded so the VFS's
/// lexicographic listing is also numeric epoch order.
pub fn map_path(pid: Pid, epoch: u64) -> String {
    format!("{JIT_MAP_DIR}/{}/map.{epoch:010}", pid.0)
}

/// Render entries in the on-disk text format:
/// `addr(hex) size(hex) level signature`.
pub fn render_map(entries: &[CodeMapEntry]) -> String {
    let mut s = String::with_capacity(entries.len() * 80);
    for e in entries {
        s.push_str(&format!(
            "{:016x} {:08x} {} {}\n",
            e.addr, e.size, e.level, e.signature
        ));
    }
    s
}

/// Parse a map file.
pub fn parse_map(text: &str) -> Result<Vec<CodeMapEntry>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(4, ' ');
        let (Some(addr), Some(size), Some(level), Some(signature)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("map line {}: malformed", lineno + 1));
        };
        out.push(CodeMapEntry {
            addr: u64::from_str_radix(addr, 16)
                .map_err(|e| format!("map line {}: bad addr: {e}", lineno + 1))?,
            size: u64::from_str_radix(size, 16)
                .map_err(|e| format!("map line {}: bad size: {e}", lineno + 1))?,
            level: level.to_string(),
            signature: signature.to_string(),
        });
    }
    Ok(out)
}

/// One epoch's map, indexed for address lookup.
#[derive(Debug, Clone)]
pub struct EpochMap {
    pub epoch: u64,
    /// Sorted by `addr`. Entries within one map never overlap (each is
    /// a distinct heap object), so binary search suffices.
    entries: Vec<CodeMapEntry>,
}

impl EpochMap {
    pub fn new(epoch: u64, mut entries: Vec<CodeMapEntry>) -> Self {
        entries.sort_by_key(|e| e.addr);
        EpochMap { epoch, entries }
    }

    pub fn entries(&self) -> &[CodeMapEntry] {
        &self.entries
    }

    pub fn resolve(&self, pc: Addr) -> Option<&CodeMapEntry> {
        let pos = self.entries.partition_point(|e| e.addr <= pc);
        if pos == 0 {
            return None;
        }
        let cand = &self.entries[pos - 1];
        cand.contains(pc).then_some(cand)
    }
}

/// All epoch maps of one VM, ready for chained resolution.
#[derive(Debug, Clone, Default)]
pub struct CodeMapSet {
    /// Sorted ascending by epoch.
    maps: Vec<EpochMap>,
}

impl CodeMapSet {
    pub fn new(mut maps: Vec<EpochMap>) -> Self {
        maps.sort_by_key(|m| m.epoch);
        CodeMapSet { maps }
    }

    /// Load every map file for `pid` from the VFS.
    pub fn load(vfs: &Vfs, pid: Pid) -> Result<CodeMapSet, String> {
        let prefix = format!("{JIT_MAP_DIR}/{}/map.", pid.0);
        let mut maps = Vec::new();
        for path in vfs.list(&prefix) {
            let epoch: u64 = path[prefix.len()..]
                .parse()
                .map_err(|e| format!("bad map filename {path}: {e}"))?;
            let text = std::str::from_utf8(vfs.read(path).expect("listed file must exist"))
                .map_err(|e| format!("{path}: not UTF-8: {e}"))?;
            maps.push(EpochMap::new(epoch, parse_map(text)?));
        }
        Ok(CodeMapSet::new(maps))
    }

    pub fn maps(&self) -> &[EpochMap] {
        &self.maps
    }

    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// The paper's resolution algorithm: search the sample's epoch map,
    /// then walk backwards until the first map containing the address.
    pub fn resolve(&self, pc: Addr, epoch: u64) -> Option<&CodeMapEntry> {
        let start = self.maps.partition_point(|m| m.epoch <= epoch);
        self.maps[..start]
            .iter()
            .rev()
            .find_map(|m| m.resolve(pc))
    }

    /// Total entries across all maps (agent overhead accounting).
    pub fn total_entries(&self) -> usize {
        self.maps.iter().map(|m| m.entries.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(addr: Addr, size: u64, sig: &str) -> CodeMapEntry {
        CodeMapEntry {
            addr,
            size,
            level: "base".to_string(),
            signature: sig.to_string(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let entries = vec![
            e(0x6400_0040, 0x80, "app.Main.run"),
            e(0x6400_0100, 0x40, "app.Util.helper"),
        ];
        let parsed = parse_map(&render_map(&entries)).unwrap();
        assert_eq!(parsed, entries);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_map("xyz 10 base sig").is_err());
        assert!(parse_map("10 zz base sig").is_err());
        assert!(parse_map("10 20 base").is_err());
        assert_eq!(parse_map("# comment\n\n").unwrap().len(), 0);
    }

    #[test]
    fn signatures_with_spaces_survive() {
        // splitn(4) keeps everything after the level as the signature.
        let entries = vec![e(0x10, 0x10, "app.Main.run (I)V")];
        let parsed = parse_map(&render_map(&entries)).unwrap();
        assert_eq!(parsed[0].signature, "app.Main.run (I)V");
    }

    #[test]
    fn epoch_map_binary_search() {
        let m = EpochMap::new(0, vec![e(0x200, 0x40, "b"), e(0x100, 0x40, "a")]);
        assert_eq!(m.resolve(0x100).unwrap().signature, "a");
        assert_eq!(m.resolve(0x13f).unwrap().signature, "a");
        assert!(m.resolve(0x140).is_none(), "gap");
        assert_eq!(m.resolve(0x23f).unwrap().signature, "b");
        assert!(m.resolve(0x240).is_none());
        assert!(m.resolve(0x0).is_none());
    }

    #[test]
    fn backward_search_finds_most_recent_occupant() {
        // Epoch 0: method A at 0x100. Epoch 1: method B compiled over
        // the same address (A died). Epoch 2: nothing at 0x100.
        let set = CodeMapSet::new(vec![
            EpochMap::new(0, vec![e(0x100, 0x40, "A")]),
            EpochMap::new(1, vec![e(0x100, 0x40, "B")]),
            EpochMap::new(2, vec![e(0x900, 0x40, "C")]),
        ]);
        // Sample in epoch 0 → A (epoch-0 map hit directly).
        assert_eq!(set.resolve(0x110, 0).unwrap().signature, "A");
        // Sample in epoch 1 → B.
        assert_eq!(set.resolve(0x110, 1).unwrap().signature, "B");
        // Sample in epoch 2 → backward search lands on B, the most
        // recent occupant (paper §3.2).
        assert_eq!(set.resolve(0x110, 2).unwrap().signature, "B");
        // Unknown address in any epoch → None.
        assert!(set.resolve(0x500, 2).is_none());
    }

    #[test]
    fn resolution_never_looks_forward() {
        // Method compiled in epoch 3 must not resolve samples from
        // epoch 1 (the address belonged to nobody back then).
        let set = CodeMapSet::new(vec![EpochMap::new(3, vec![e(0x100, 0x40, "X")])]);
        assert!(set.resolve(0x110, 1).is_none());
        assert_eq!(set.resolve(0x110, 3).unwrap().signature, "X");
        assert_eq!(
            set.resolve(0x110, 9).unwrap().signature,
            "X",
            "later epochs fall back to the last write"
        );
    }

    #[test]
    fn vfs_load_orders_epochs_numerically() {
        let mut vfs = Vfs::new();
        let pid = Pid(12);
        // Write out of order, with >9 epochs to catch lexicographic bugs.
        for epoch in [10u64, 2, 0, 7] {
            let entries = vec![e(0x100 * (epoch + 1), 0x40, &format!("m{epoch}"))];
            vfs.write(map_path(pid, epoch), render_map(&entries).into_bytes());
        }
        let set = CodeMapSet::load(&vfs, pid).unwrap();
        let epochs: Vec<u64> = set.maps().iter().map(|m| m.epoch).collect();
        assert_eq!(epochs, vec![0, 2, 7, 10]);
        assert_eq!(set.resolve(0x300, 5).unwrap().signature, "m2");
        // Other pids' maps are invisible.
        assert!(CodeMapSet::load(&vfs, Pid(99)).unwrap().is_empty());
    }
}
