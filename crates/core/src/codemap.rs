//! Epoch code maps: the files the VM Agent writes and the
//! epoch-chained lookup the post-processor runs.
//!
//! One map file per execution epoch, each a *partial* map: only
//! methods compiled/recompiled during that epoch plus methods moved by
//! the previous collection (§3.1). Resolution of a sample `(pc, e)`
//! searches map `e`, then `e-1`, `e-2`, … — "the method which the
//! sample will be associated with is the most recently compiled — or
//! moved — method to occupy that address space" (§3.2).

use crate::error::ViprofError;
use sim_cpu::{Addr, Pid, ProcKey};
use sim_os::Vfs;

/// VFS directory the agent writes maps under.
pub const JIT_MAP_DIR: &str = "/var/lib/oprofile/jit";

/// One code-body record in a map file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeMapEntry {
    pub addr: Addr,
    pub size: u64,
    /// Tier label, e.g. `base`, `O1`, `O2`.
    pub level: String,
    /// Fully-qualified method signature.
    pub signature: String,
}

impl CodeMapEntry {
    pub fn contains(&self, pc: Addr) -> bool {
        pc >= self.addr && pc < self.addr + self.size
    }
}

/// Map-file path for (incarnation, epoch). Zero-padded so the VFS's
/// lexicographic listing is also numeric epoch order. Each incarnation
/// of a pid gets its own generation directory — a restarted VM resets
/// its epoch counter to 0 without ever touching (or being resolved
/// against) its predecessor's chain. A bare `Pid` coerces to
/// generation 0.
pub fn map_path(key: impl Into<ProcKey>, epoch: u64) -> String {
    let key = key.into();
    format!("{JIT_MAP_DIR}/{}/{}/map.{epoch:010}", key.pid.0, key.gen)
}

/// Path of the agent's code-map write-ahead journal for one
/// incarnation. Lives beside the map files (same per-incarnation
/// directory) but outside the `map.` prefix, so map listings never
/// pick it up.
pub fn journal_path(key: impl Into<ProcKey>) -> String {
    let key = key.into();
    format!("{JIT_MAP_DIR}/{}/{}/journal", key.pid.0, key.gen)
}

/// Render entries in the on-disk text format:
/// `addr(hex) size(hex) level signature`.
pub fn render_map(entries: &[CodeMapEntry]) -> String {
    let mut s = String::with_capacity(entries.len() * 80);
    for e in entries {
        s.push_str(&format!(
            "{:016x} {:08x} {} {}\n",
            e.addr, e.size, e.level, e.signature
        ));
    }
    s
}

/// Outcome of a (lossy) map parse: the entries that decoded cleanly
/// plus a count of lines that did not.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedMap {
    pub entries: Vec<CodeMapEntry>,
    /// Lines rejected (malformed field layout, bad hex).
    pub quarantined: u64,
}

fn parse_line(line: &str) -> Option<CodeMapEntry> {
    let mut parts = line.splitn(4, ' ');
    let (addr, size, level, signature) =
        (parts.next()?, parts.next()?, parts.next()?, parts.next()?);
    Some(CodeMapEntry {
        addr: u64::from_str_radix(addr, 16).ok()?,
        size: u64::from_str_radix(size, 16).ok()?,
        level: level.to_string(),
        signature: signature.to_string(),
    })
}

/// Parse a map file, quarantining bad lines instead of failing.
///
/// A map written by a crashing agent (or damaged on disk) is still
/// mostly good: every cleanly-decoded line is kept, every damaged one
/// is counted. One flipped bit must not cost a whole epoch's worth of
/// resolution — the count surfaces in
/// [`crate::resolve::ResolutionQuality::quarantined_lines`].
pub fn parse_map(text: &str) -> ParsedMap {
    let mut out = ParsedMap::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_line(line) {
            Some(e) => out.entries.push(e),
            None => out.quarantined += 1,
        }
    }
    out
}

/// One epoch's map, indexed for address lookup.
#[derive(Debug, Clone)]
pub struct EpochMap {
    pub epoch: u64,
    /// Sorted by `addr`. Entries within one map never overlap (each is
    /// a distinct heap object), so binary search suffices.
    entries: Vec<CodeMapEntry>,
}

impl EpochMap {
    pub fn new(epoch: u64, mut entries: Vec<CodeMapEntry>) -> Self {
        entries.sort_by_key(|e| e.addr);
        EpochMap { epoch, entries }
    }

    pub fn entries(&self) -> &[CodeMapEntry] {
        &self.entries
    }

    pub fn resolve(&self, pc: Addr) -> Option<&CodeMapEntry> {
        let pos = self.entries.partition_point(|e| e.addr <= pc);
        if pos == 0 {
            return None;
        }
        let cand = &self.entries[pos - 1];
        cand.contains(pc).then_some(cand)
    }
}

/// All epoch maps of one VM, ready for chained resolution.
#[derive(Debug, Clone, Default)]
pub struct CodeMapSet {
    /// Sorted ascending by epoch.
    maps: Vec<EpochMap>,
    /// Map lines rejected during load (see [`parse_map`]).
    pub quarantined_lines: u64,
    /// Whole map files skipped as unusable (unparseable filename or
    /// non-UTF-8 content).
    pub skipped_files: u64,
}

impl CodeMapSet {
    pub fn new(mut maps: Vec<EpochMap>) -> Self {
        maps.sort_by_key(|m| m.epoch);
        CodeMapSet {
            maps,
            quarantined_lines: 0,
            skipped_files: 0,
        }
    }

    /// Load every map file for one incarnation from the VFS.
    ///
    /// Degrades per file: an unusable file (garbage filename, binary
    /// content) is skipped and counted; bad lines inside a usable file
    /// are quarantined and counted. `Err` only when map files exist for
    /// the incarnation but *none* could be used at all.
    pub fn load(vfs: &Vfs, key: impl Into<ProcKey>) -> Result<CodeMapSet, ViprofError> {
        let key = key.into();
        let pid = key.pid;
        let prefix = format!("{JIT_MAP_DIR}/{}/{}/map.", key.pid.0, key.gen);
        let mut maps = Vec::new();
        let mut quarantined = 0;
        let mut skipped = 0;
        let paths = vfs.list(&prefix);
        let total_files = paths.len();
        for path in paths {
            let Ok(epoch) = path[prefix.len()..].parse::<u64>() else {
                skipped += 1;
                continue;
            };
            // A listed path should always read back; treat a miss like
            // any other unusable file rather than panicking mid-report.
            let Some(raw) = vfs.read(path) else {
                skipped += 1;
                continue;
            };
            let Ok(text) = std::str::from_utf8(raw) else {
                skipped += 1;
                continue;
            };
            let parsed = parse_map(text);
            quarantined += parsed.quarantined;
            maps.push(EpochMap::new(epoch, parsed.entries));
        }
        if total_files > 0 && maps.is_empty() {
            return Err(ViprofError::NoUsableMaps { pid });
        }
        let mut set = CodeMapSet::new(maps);
        set.quarantined_lines = quarantined;
        set.skipped_files = skipped;
        Ok(set)
    }

    pub fn maps(&self) -> &[EpochMap] {
        &self.maps
    }

    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// The paper's resolution algorithm: search the sample's epoch map,
    /// then walk backwards until the first map containing the address.
    pub fn resolve(&self, pc: Addr, epoch: u64) -> Option<&CodeMapEntry> {
        let start = self.maps.partition_point(|m| m.epoch <= epoch);
        self.maps[..start]
            .iter()
            .rev()
            .find_map(|m| m.resolve(pc))
    }

    /// Salvage resolution for damaged chains: the paper's backward walk
    /// first; on a miss, search *forward* through later epochs. A
    /// forward hit is second-class — the body provably occupied the
    /// address at some *later* time, so the attribution may be stale —
    /// but it recovers samples whose own epoch's map was lost, or whose
    /// epoch tag was skewed backwards by a lagging driver-side counter.
    /// Returns the entry and whether it came from the stale (forward)
    /// path.
    pub fn resolve_salvage(&self, pc: Addr, epoch: u64) -> Option<(&CodeMapEntry, bool)> {
        if let Some(e) = self.resolve(pc, epoch) {
            return Some((e, false));
        }
        let start = self.maps.partition_point(|m| m.epoch <= epoch);
        self.maps[start..]
            .iter()
            .find_map(|m| m.resolve(pc))
            .map(|e| (e, true))
    }

    /// Epochs absent from the chain. The agent writes one map per epoch
    /// from 0 up to the final flush, so any gap (or missing head) means
    /// a lost write.
    pub fn missing_epochs(&self) -> u64 {
        match self.maps.last() {
            Some(last) => (last.epoch + 1).saturating_sub(self.maps.len() as u64),
            None => 0,
        }
    }

    /// Total entries across all maps (agent overhead accounting).
    pub fn total_entries(&self) -> usize {
        self.maps.iter().map(|m| m.entries.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(addr: Addr, size: u64, sig: &str) -> CodeMapEntry {
        CodeMapEntry {
            addr,
            size,
            level: "base".to_string(),
            signature: sig.to_string(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let entries = vec![
            e(0x6400_0040, 0x80, "app.Main.run"),
            e(0x6400_0100, 0x40, "app.Util.helper"),
        ];
        let parsed = parse_map(&render_map(&entries));
        assert_eq!(parsed.entries, entries);
        assert_eq!(parsed.quarantined, 0);
    }

    #[test]
    fn parse_quarantines_malformed_lines() {
        // Bad lines are counted, good lines around them survive.
        let text = "xyz 10 base sig\n\
                    100 40 base app.Good.one\n\
                    10 zz base sig\n\
                    10 20 base\n\
                    # comment\n\
                    \n\
                    200 40 base app.Good.two\n";
        let parsed = parse_map(text);
        assert_eq!(parsed.quarantined, 3);
        let sigs: Vec<&str> = parsed
            .entries
            .iter()
            .map(|e| e.signature.as_str())
            .collect();
        assert_eq!(sigs, vec!["app.Good.one", "app.Good.two"]);
        assert_eq!(parse_map("# comment\n\n"), ParsedMap::default());
    }

    #[test]
    fn signatures_with_spaces_survive() {
        // splitn(4) keeps everything after the level as the signature.
        let entries = vec![e(0x10, 0x10, "app.Main.run (I)V")];
        let parsed = parse_map(&render_map(&entries));
        assert_eq!(parsed.entries[0].signature, "app.Main.run (I)V");
    }

    #[test]
    fn epoch_map_binary_search() {
        let m = EpochMap::new(0, vec![e(0x200, 0x40, "b"), e(0x100, 0x40, "a")]);
        assert_eq!(m.resolve(0x100).unwrap().signature, "a");
        assert_eq!(m.resolve(0x13f).unwrap().signature, "a");
        assert!(m.resolve(0x140).is_none(), "gap");
        assert_eq!(m.resolve(0x23f).unwrap().signature, "b");
        assert!(m.resolve(0x240).is_none());
        assert!(m.resolve(0x0).is_none());
    }

    #[test]
    fn backward_search_finds_most_recent_occupant() {
        // Epoch 0: method A at 0x100. Epoch 1: method B compiled over
        // the same address (A died). Epoch 2: nothing at 0x100.
        let set = CodeMapSet::new(vec![
            EpochMap::new(0, vec![e(0x100, 0x40, "A")]),
            EpochMap::new(1, vec![e(0x100, 0x40, "B")]),
            EpochMap::new(2, vec![e(0x900, 0x40, "C")]),
        ]);
        // Sample in epoch 0 → A (epoch-0 map hit directly).
        assert_eq!(set.resolve(0x110, 0).unwrap().signature, "A");
        // Sample in epoch 1 → B.
        assert_eq!(set.resolve(0x110, 1).unwrap().signature, "B");
        // Sample in epoch 2 → backward search lands on B, the most
        // recent occupant (paper §3.2).
        assert_eq!(set.resolve(0x110, 2).unwrap().signature, "B");
        // Unknown address in any epoch → None.
        assert!(set.resolve(0x500, 2).is_none());
    }

    #[test]
    fn resolution_never_looks_forward() {
        // Method compiled in epoch 3 must not resolve samples from
        // epoch 1 (the address belonged to nobody back then).
        let set = CodeMapSet::new(vec![EpochMap::new(3, vec![e(0x100, 0x40, "X")])]);
        assert!(set.resolve(0x110, 1).is_none());
        assert_eq!(set.resolve(0x110, 3).unwrap().signature, "X");
        assert_eq!(
            set.resolve(0x110, 9).unwrap().signature,
            "X",
            "later epochs fall back to the last write"
        );
    }

    #[test]
    fn vfs_load_orders_epochs_numerically() {
        let mut vfs = Vfs::new();
        let pid = Pid(12);
        // Write out of order, with >9 epochs to catch lexicographic bugs.
        for epoch in [10u64, 2, 0, 7] {
            let entries = vec![e(0x100 * (epoch + 1), 0x40, &format!("m{epoch}"))];
            vfs.write(map_path(pid, epoch), render_map(&entries).into_bytes());
        }
        let set = CodeMapSet::load(&vfs, pid).unwrap();
        let epochs: Vec<u64> = set.maps().iter().map(|m| m.epoch).collect();
        assert_eq!(epochs, vec![0, 2, 7, 10]);
        assert_eq!(set.resolve(0x300, 5).unwrap().signature, "m2");
        // Other pids' maps are invisible.
        assert!(CodeMapSet::load(&vfs, Pid(99)).unwrap().is_empty());
    }

    #[test]
    fn load_degrades_around_damaged_files() {
        let mut vfs = Vfs::new();
        let pid = Pid(5);
        vfs.write(map_path(pid, 0), render_map(&[e(0x100, 0x40, "good")]).into_bytes());
        // Epoch 1: one good line, one garbled.
        vfs.write(
            map_path(pid, 1),
            b"!! torn garbage\n0000000000000200 00000040 base alive\n".to_vec(),
        );
        // Non-UTF-8 file: skipped wholesale.
        vfs.write(map_path(pid, 2), vec![0xff, 0xfe, 0x00, 0x80]);
        // Garbage filename under the same prefix: skipped.
        vfs.write(format!("{JIT_MAP_DIR}/{}/0/map.zzz", pid.0), b"x".to_vec());
        let set = CodeMapSet::load(&vfs, pid).unwrap();
        assert_eq!(set.maps().len(), 2);
        assert_eq!(set.quarantined_lines, 1);
        assert_eq!(set.skipped_files, 2);
        assert_eq!(set.resolve(0x210, 1).unwrap().signature, "alive");
    }

    #[test]
    fn load_errors_only_when_nothing_is_usable() {
        let mut vfs = Vfs::new();
        let pid = Pid(6);
        vfs.write(map_path(pid, 0), vec![0xff, 0xfe]);
        let err = CodeMapSet::load(&vfs, pid).unwrap_err();
        assert_eq!(err, ViprofError::NoUsableMaps { pid });
    }

    #[test]
    fn salvage_searches_forward_after_backward_misses() {
        // Epoch 1's map was lost; method X only appears in epoch 3's
        // map. A sample tagged epoch 1 misses backwards but salvages
        // forwards — flagged stale.
        let set = CodeMapSet::new(vec![
            EpochMap::new(0, vec![e(0x900, 0x40, "old")]),
            EpochMap::new(3, vec![e(0x100, 0x40, "X")]),
        ]);
        assert!(set.resolve(0x110, 1).is_none());
        let (hit, stale) = set.resolve_salvage(0x110, 1).unwrap();
        assert_eq!((hit.signature.as_str(), stale), ("X", true));
        // A backward hit is never marked stale.
        let (hit, stale) = set.resolve_salvage(0x910, 2).unwrap();
        assert_eq!((hit.signature.as_str(), stale), ("old", false));
        // Nothing anywhere: still a miss.
        assert!(set.resolve_salvage(0x500, 1).is_none());
    }

    #[test]
    fn generations_keep_separate_map_chains() {
        let mut vfs = Vfs::new();
        let pid = Pid(9);
        // Gen 0 (a bare Pid coerces to gen 0) and gen 1 both write an
        // epoch-0 map at the same address — different methods.
        vfs.write(map_path(pid, 0), render_map(&[e(0x100, 0x40, "old.Main")]).into_bytes());
        vfs.write(
            map_path(ProcKey::new(pid, 1), 0),
            render_map(&[e(0x100, 0x40, "new.Main")]).into_bytes(),
        );
        let g0 = CodeMapSet::load(&vfs, pid).unwrap();
        let g1 = CodeMapSet::load(&vfs, ProcKey::new(pid, 1)).unwrap();
        assert_eq!(g0.resolve(0x110, 0).unwrap().signature, "old.Main");
        assert_eq!(g1.resolve(0x110, 0).unwrap().signature, "new.Main");
        // A generation that never ran has no maps at all.
        assert!(CodeMapSet::load(&vfs, ProcKey::new(pid, 2)).unwrap().is_empty());
    }

    #[test]
    fn missing_epochs_counts_chain_gaps() {
        let gap = CodeMapSet::new(vec![
            EpochMap::new(0, vec![]),
            EpochMap::new(3, vec![]),
        ]);
        assert_eq!(gap.missing_epochs(), 2, "epochs 1 and 2 lost");
        let headless = CodeMapSet::new(vec![EpochMap::new(2, vec![])]);
        assert_eq!(headless.missing_epochs(), 2, "epochs 0 and 1 lost");
        let full = CodeMapSet::new(vec![
            EpochMap::new(0, vec![]),
            EpochMap::new(1, vec![]),
        ]);
        assert_eq!(full.missing_epochs(), 0);
        assert_eq!(CodeMapSet::default().missing_epochs(), 0);
    }
}
