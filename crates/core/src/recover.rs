//! Recovery replay: rebuild consistent profiling state from the
//! write-ahead journals.
//!
//! PR-1-era degradation is *accounting*: a torn map loses entries, a
//! garbled line is quarantined, a crashed daemon's samples are gone, and
//! [`crate::resolve::ResolutionQuality`] counts the damage. The
//! journals added alongside ([`sim_os::journal`]) make a stronger move
//! possible: every committed journal record carries the *pristine*
//! payload (the agent journals the rendered map before faults touch the
//! map file; the daemon journals each drained batch), so a recovery
//! pass can replay the journal over the damaged on-disk state and get
//! back exactly what a clean run would have produced — up to the last
//! commit point.
//!
//! Two replay paths:
//!
//! * [`recover_codemaps`] — per pid: scan the agent's journal, parse
//!   each committed `KIND_CODE_MAP` record, and overlay the pristine
//!   epoch map over whatever the map files say. Epochs whose record
//!   never committed (lost write → nothing journaled; rotted record →
//!   journal truncated there) keep their on-disk state, so recovery is
//!   monotone: it never resolves fewer samples than the degraded
//!   baseline.
//! * [`recover_sample_db`] — scan the daemon's sample-batch journal and
//!   merge every committed `KIND_SAMPLE_BATCH` back into one
//!   [`SampleDb`] — a rebuild path for sessions whose final database
//!   never hit the VFS (daemon down at `stop`).
//!
//! Both report what they did through [`RecoveryReport`], which rides
//! alongside `ResolutionQuality` so "how much was saved" is as
//! measurable as "how much was lost".

use crate::codemap::{journal_path, parse_map, CodeMapSet, EpochMap, ParsedMap, JIT_MAP_DIR};
use oprofile::{SampleDb, SAMPLE_JOURNAL_PATH};
use sim_cpu::ProcKey;
use sim_os::journal::{
    self, split_traced_payload, KIND_CODE_MAP, KIND_SAMPLE_BATCH, KIND_SAMPLE_BATCH_TRACED,
};
use sim_os::Vfs;
use std::collections::BTreeMap;

/// What one recovery pass accomplished, aggregated across every journal
/// it touched. Deterministic per fault seed: two replays of the same
/// session produce identical reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journals found and scanned (per-pid map journals + the sample
    /// journal when present).
    pub journals_scanned: u64,
    /// Committed records replayed across all journals.
    pub records_replayed: u64,
    /// Journals whose tail was damaged and cut at the last commit.
    pub truncated_journals: u64,
    /// Total bytes discarded past the last valid commit.
    pub truncated_bytes: u64,
    /// Epochs whose map was improved by replay (absent, unreadable,
    /// quarantined or torn on disk; pristine in the journal).
    pub epochs_recovered: u64,
    /// Sample batches merged while rebuilding a database.
    pub sample_batches_replayed: u64,
    /// Committed batch records whose payload no longer decoded.
    pub bad_sample_batches: u64,
    /// Whether the sample database itself was rebuilt from the journal
    /// (as opposed to recovery only repairing code maps).
    pub db_rebuilt: bool,
    /// Samples the recovered resolution attributes that the degraded
    /// baseline could not (filled in by the caller comparing quality
    /// reports; see `Viprof::make_report` with [`recover`] set).
    ///
    /// [`recover`]: crate::session::ReportSpec::recover
    pub samples_salvaged: u64,
}

impl RecoveryReport {
    /// Fold one pid's map recovery into the aggregate.
    pub fn absorb(&mut self, pid: &PidRecovery) {
        self.journals_scanned += 1;
        self.records_replayed += pid.records_replayed;
        self.truncated_bytes += pid.truncated_bytes;
        if pid.truncated_bytes > 0 {
            self.truncated_journals += 1;
        }
        self.epochs_recovered += pid.epochs_recovered;
    }
}

/// Per-pid accounting from [`recover_codemaps`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PidRecovery {
    pub records_replayed: u64,
    pub truncated_bytes: u64,
    pub epochs_recovered: u64,
}

/// Rebuild one incarnation's epoch code maps by replaying its map
/// journal over the on-disk map files. `None` when the incarnation
/// never journaled (plain [`CodeMapSet::load`] is all there is). A
/// bare `Pid` coerces to generation 0.
///
/// For every epoch the outcome is the better of the two sources:
/// a committed journal record carries the pristine render and wins;
/// epochs with no committed record fall back to whatever the map file
/// parse salvages — so per epoch the recovered entry set is a superset
/// of the degraded one, and resolution is monotonically no worse.
pub fn recover_codemaps(vfs: &Vfs, key: impl Into<ProcKey>) -> Option<(CodeMapSet, PidRecovery)> {
    let key = key.into();
    let scan = journal::scan(vfs, &journal_path(key))?;
    let mut rec = PidRecovery {
        truncated_bytes: scan.damaged_bytes as u64,
        ..PidRecovery::default()
    };
    // On-disk state first, exactly as the degraded loader sees it:
    // `Some(parsed)` for readable files, `None` for unreadable ones.
    let prefix = format!("{JIT_MAP_DIR}/{}/{}/map.", key.pid.0, key.gen);
    let mut epochs: BTreeMap<u64, Option<ParsedMap>> = BTreeMap::new();
    let mut skipped_unnameable = 0u64;
    for path in vfs.list(&prefix) {
        let Ok(epoch) = path[prefix.len()..].parse::<u64>() else {
            skipped_unnameable += 1;
            continue;
        };
        let state = vfs
            .read(path)
            .and_then(|raw| std::str::from_utf8(raw).ok())
            .map(parse_map);
        epochs.insert(epoch, state);
    }
    // Overlay the journal: each committed record is a pristine epoch
    // map (CRC-verified, so a decode failure here means a malformed
    // writer, not media damage — skip defensively rather than panic).
    for r in &scan.records {
        if r.kind != KIND_CODE_MAP || r.payload.len() < 8 {
            continue;
        }
        let epoch = u64::from_le_bytes(r.payload[..8].try_into().expect("8-byte prefix"));
        let Ok(text) = std::str::from_utf8(&r.payload[8..]) else {
            continue;
        };
        rec.records_replayed += 1;
        let pristine = parse_map(text);
        let improved = match epochs.get(&epoch) {
            None | Some(None) => true,
            Some(Some(disk)) => disk.quarantined > 0 || disk.entries != pristine.entries,
        };
        if improved {
            rec.epochs_recovered += 1;
        }
        epochs.insert(epoch, Some(pristine));
    }
    let mut maps = Vec::new();
    let mut quarantined = 0;
    let mut skipped = skipped_unnameable;
    for (epoch, state) in epochs {
        match state {
            Some(p) => {
                quarantined += p.quarantined;
                maps.push(EpochMap::new(epoch, p.entries));
            }
            None => skipped += 1,
        }
    }
    let mut set = CodeMapSet::new(maps);
    set.quarantined_lines = quarantined;
    set.skipped_files = skipped;
    Some((set, rec))
}

/// A sample database rebuilt by journal replay.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveredDb {
    pub db: SampleDb,
    /// Batches merged.
    pub batches: u64,
    /// Committed batch records whose payload failed to decode.
    pub bad_batches: u64,
    /// Bytes cut past the journal's last commit.
    pub truncated_bytes: u64,
}

/// Replay the daemon's sample-batch journal into a fresh [`SampleDb`].
/// `None` when the session never journaled samples.
pub fn recover_sample_db(vfs: &Vfs) -> Option<RecoveredDb> {
    let scan = journal::scan(vfs, SAMPLE_JOURNAL_PATH)?;
    let mut out = RecoveredDb {
        truncated_bytes: scan.damaged_bytes as u64,
        ..RecoveredDb::default()
    };
    for r in &scan.records {
        // Both the untagged v1 record and the traced v3 record carry a
        // SampleDb body; the trace header (when present) is 16 bytes of
        // span identity in front of it.
        let body = match r.kind {
            KIND_SAMPLE_BATCH => Some(&r.payload[..]),
            KIND_SAMPLE_BATCH_TRACED => split_traced_payload(&r.payload).map(|(_, b)| b),
            _ => None,
        };
        let Some(body) = body else {
            if r.kind == KIND_SAMPLE_BATCH_TRACED {
                out.bad_batches += 1;
            }
            continue;
        };
        match SampleDb::from_bytes(body) {
            Ok(batch) => {
                out.db.merge(&batch);
                out.batches += 1;
            }
            Err(_) => out.bad_batches += 1,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codemap::{map_path, render_map, CodeMapEntry};
    use oprofile::{SampleBucket, SampleOrigin};
    use sim_cpu::{HwEvent, Pid};
    use sim_os::JournalWriter;

    fn entry(addr: u64, sig: &str) -> CodeMapEntry {
        CodeMapEntry {
            addr,
            size: 0x40,
            level: "base".into(),
            signature: sig.into(),
        }
    }

    fn map_payload(epoch: u64, entries: &[CodeMapEntry]) -> Vec<u8> {
        let mut p = epoch.to_le_bytes().to_vec();
        p.extend_from_slice(render_map(entries).as_bytes());
        p
    }

    #[test]
    fn no_journal_means_no_recovery_path() {
        let vfs = Vfs::new();
        assert!(recover_codemaps(&vfs, Pid(4)).is_none());
        assert!(recover_sample_db(&vfs).is_none());
    }

    #[test]
    fn journal_overlay_restores_a_torn_epoch() {
        let mut vfs = Vfs::new();
        let pid = Pid(9);
        let full = vec![entry(0x100, "app.A"), entry(0x200, "app.B")];
        // Disk: epoch 0 intact, epoch 1 torn to its first line.
        vfs.write(map_path(pid, 0), render_map(&full[..1]).into_bytes());
        let torn: String = render_map(&full).chars().take(20).collect();
        vfs.write(map_path(pid, 1), torn.into_bytes());
        // Journal: both epochs pristine.
        let mut w = JournalWriter::create(&mut vfs, journal_path(pid));
        w.append(&mut vfs, KIND_CODE_MAP, &map_payload(0, &full[..1]));
        w.append(&mut vfs, KIND_CODE_MAP, &map_payload(1, &full));
        let degraded = CodeMapSet::load(&vfs, pid).unwrap();
        assert!(degraded.resolve(0x210, 1).is_none(), "torn line lost B");
        let (set, rec) = recover_codemaps(&vfs, pid).unwrap();
        assert_eq!(set.resolve(0x210, 1).unwrap().signature, "app.B");
        assert_eq!(rec.records_replayed, 2);
        assert_eq!(rec.epochs_recovered, 1, "epoch 0 was already clean");
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(set.quarantined_lines, 0);
    }

    #[test]
    fn journal_restores_a_missing_epoch_entirely() {
        let mut vfs = Vfs::new();
        let pid = Pid(3);
        // Disk: nothing at all (every write lost)… but the journal has
        // epoch 0 committed (mixed-fault run: the loss hit the map file
        // write, not the journal append).
        let mut w = JournalWriter::create(&mut vfs, journal_path(pid));
        w.append(&mut vfs, KIND_CODE_MAP, &map_payload(0, &[entry(0x100, "app.X")]));
        let (set, rec) = recover_codemaps(&vfs, pid).unwrap();
        assert_eq!(set.maps().len(), 1);
        assert_eq!(set.resolve(0x110, 0).unwrap().signature, "app.X");
        assert_eq!(rec.epochs_recovered, 1);
    }

    #[test]
    fn rotted_journal_tail_falls_back_to_disk_state() {
        let mut vfs = Vfs::new();
        let pid = Pid(7);
        let a = [entry(0x100, "app.A")];
        let b = [entry(0x200, "app.B")];
        vfs.write(map_path(pid, 0), render_map(&a).into_bytes());
        vfs.write(map_path(pid, 1), render_map(&b).into_bytes());
        let mut w = JournalWriter::create(&mut vfs, journal_path(pid));
        // Record 0 rots on the media: the scan truncates there, so
        // record 1 (pristine) is unreachable — both epochs must come
        // from disk, and the damage must be counted.
        w.append_rotted(&mut vfs, KIND_CODE_MAP, &map_payload(0, &a), b"garbage!");
        w.append(&mut vfs, KIND_CODE_MAP, &map_payload(1, &b));
        let (set, rec) = recover_codemaps(&vfs, pid).unwrap();
        assert_eq!(rec.records_replayed, 0);
        assert!(rec.truncated_bytes > 0);
        assert_eq!(rec.epochs_recovered, 0);
        assert_eq!(set.resolve(0x110, 0).unwrap().signature, "app.A");
        assert_eq!(set.resolve(0x210, 1).unwrap().signature, "app.B");
    }

    #[test]
    fn recovery_is_never_worse_than_the_degraded_load() {
        // Epoch 1 unreadable on disk, pristine in the journal; epoch 2
        // only on disk (its journal record never committed).
        let mut vfs = Vfs::new();
        let pid = Pid(5);
        vfs.write(map_path(pid, 1), vec![0xff, 0xfe, 0x80]);
        vfs.write(map_path(pid, 2), render_map(&[entry(0x300, "app.C")]).into_bytes());
        let mut w = JournalWriter::create(&mut vfs, journal_path(pid));
        w.append(&mut vfs, KIND_CODE_MAP, &map_payload(1, &[entry(0x200, "app.B")]));
        let degraded = CodeMapSet::load(&vfs, pid).unwrap();
        assert_eq!(degraded.skipped_files, 1);
        let (set, rec) = recover_codemaps(&vfs, pid).unwrap();
        assert_eq!(set.skipped_files, 0, "unreadable epoch replaced by replay");
        assert_eq!(rec.epochs_recovered, 1);
        assert!(set.total_entries() >= degraded.total_entries());
        assert_eq!(set.resolve(0x210, 1).unwrap().signature, "app.B");
        assert_eq!(set.resolve(0x310, 2).unwrap().signature, "app.C");
    }

    #[test]
    fn sample_db_rebuilds_from_batch_records() {
        let mut vfs = Vfs::new();
        let bucket = |addr| SampleBucket {
            origin: SampleOrigin::Unknown,
            event: HwEvent::Cycles,
            addr,
            epoch: 0,
        };
        let mut batch1 = SampleDb::new();
        batch1.add(bucket(0x100), 4);
        let mut batch2 = SampleDb::new();
        batch2.add(bucket(0x100), 1);
        batch2.add(bucket(0x200), 2);
        batch2.dropped = 3;
        let mut w = JournalWriter::create(&mut vfs, SAMPLE_JOURNAL_PATH);
        w.append(&mut vfs, KIND_SAMPLE_BATCH, &batch1.to_bytes());
        w.append(&mut vfs, KIND_SAMPLE_BATCH, &batch2.to_bytes());
        let got = recover_sample_db(&vfs).unwrap();
        assert_eq!(got.batches, 2);
        assert_eq!(got.bad_batches, 0);
        assert_eq!(got.truncated_bytes, 0);
        let mut want = SampleDb::new();
        want.merge(&batch1);
        want.merge(&batch2);
        assert_eq!(got.db, want);
        assert_eq!(got.db.dropped, 3);
    }

    #[test]
    fn sample_db_rebuild_accepts_traced_and_v1_records_mixed() {
        use sim_os::journal::encode_traced_payload;
        use viprof_telemetry::TraceCtx;
        let mut vfs = Vfs::new();
        let bucket = |addr| SampleBucket {
            origin: SampleOrigin::Unknown,
            event: HwEvent::Cycles,
            addr,
            epoch: 0,
        };
        let mut batch1 = SampleDb::new();
        batch1.add(bucket(0x100), 4);
        let mut batch2 = SampleDb::new();
        batch2.add(bucket(0x200), 2);
        let mut w = JournalWriter::create(&mut vfs, SAMPLE_JOURNAL_PATH);
        // An old untagged record followed by a traced one: replay reads
        // both — the header is stripped, not merged into the db.
        w.append(&mut vfs, KIND_SAMPLE_BATCH, &batch1.to_bytes());
        let ctx = TraceCtx { trace: 7, span: 9 };
        w.append(
            &mut vfs,
            KIND_SAMPLE_BATCH_TRACED,
            &encode_traced_payload(ctx, &batch2.to_bytes()),
        );
        let got = recover_sample_db(&vfs).unwrap();
        assert_eq!(got.batches, 2);
        assert_eq!(got.bad_batches, 0);
        let mut want = SampleDb::new();
        want.merge(&batch1);
        want.merge(&batch2);
        assert_eq!(got.db, want);
    }

    #[test]
    fn report_absorb_aggregates_per_pid_counts() {
        let mut report = RecoveryReport::default();
        report.absorb(&PidRecovery {
            records_replayed: 3,
            truncated_bytes: 0,
            epochs_recovered: 1,
        });
        report.absorb(&PidRecovery {
            records_replayed: 2,
            truncated_bytes: 40,
            epochs_recovered: 2,
        });
        assert_eq!(report.journals_scanned, 2);
        assert_eq!(report.records_replayed, 5);
        assert_eq!(report.truncated_journals, 1);
        assert_eq!(report.truncated_bytes, 40);
        assert_eq!(report.epochs_recovered, 3);
    }
}
