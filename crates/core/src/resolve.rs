//! The vertically integrated sample resolver.
//!
//! Combines three sources to label every sample bucket:
//!
//! 1. epoch code maps (JIT.App samples → Java methods, §3.1–3.2);
//! 2. the boot-image map (`RVM.map` → VM-internal methods, §3.2);
//! 3. stock OProfile resolution for everything else (kernel, native
//!    libraries, binaries, residual anon).

use crate::bootmap::BootMap;
use crate::codemap::{CodeMapSet, JIT_MAP_DIR};
use oprofile::report::bucket_label;
use oprofile::{SampleBucket, SampleOrigin};
use sim_cpu::Pid;
use sim_jvm::bootimage::{BOOT_IMAGE_NAME, RVM_MAP_IMAGE_LABEL};
use sim_os::{ImageId, Kernel};
use std::collections::HashMap;

/// Loaded post-processing state.
#[derive(Debug, Default)]
pub struct ViprofResolver {
    bootmap: BootMap,
    codemaps: HashMap<Pid, CodeMapSet>,
    boot_image: Option<ImageId>,
}

impl ViprofResolver {
    /// Load every map artifact from the machine's VFS.
    pub fn load(kernel: &Kernel) -> Result<ViprofResolver, String> {
        let bootmap = BootMap::load(&kernel.vfs)?;
        let boot_image = kernel.images.find_by_name(BOOT_IMAGE_NAME);
        // Discover per-pid map directories: paths look like
        // `/var/lib/oprofile/jit/<pid>/map.<epoch>`.
        let prefix = format!("{JIT_MAP_DIR}/");
        let mut pids: Vec<Pid> = kernel
            .vfs
            .list(&prefix)
            .iter()
            .filter_map(|p| {
                p[prefix.len()..]
                    .split('/')
                    .next()
                    .and_then(|s| s.parse::<u32>().ok())
                    .map(Pid)
            })
            .collect();
        pids.sort_unstable();
        pids.dedup();
        let mut codemaps = HashMap::new();
        for pid in pids {
            codemaps.insert(pid, CodeMapSet::load(&kernel.vfs, pid)?);
        }
        Ok(ViprofResolver {
            bootmap,
            codemaps,
            boot_image,
        })
    }

    pub fn codemaps(&self, pid: Pid) -> Option<&CodeMapSet> {
        self.codemaps.get(&pid)
    }

    pub fn bootmap(&self) -> &BootMap {
        &self.bootmap
    }

    /// Label one bucket: (image column, symbol column).
    pub fn label(&self, bucket: &SampleBucket, kernel: &Kernel) -> (String, String) {
        match bucket.origin {
            // VM boot image: resolve through RVM.map; the paper prints
            // these rows under image name `RVM.map`.
            SampleOrigin::Image(id) if Some(id) == self.boot_image => {
                match self.bootmap.resolve(bucket.addr) {
                    Some(m) => (RVM_MAP_IMAGE_LABEL.to_string(), m.name.clone()),
                    None => (BOOT_IMAGE_NAME.to_string(), "(no symbols)".to_string()),
                }
            }
            // Registered-heap samples: epoch-chained code-map search.
            SampleOrigin::JitApp { pid } => {
                let resolved = self
                    .codemaps
                    .get(&pid)
                    .and_then(|set| set.resolve(bucket.addr, bucket.epoch));
                match resolved {
                    Some(e) => ("JIT.App".to_string(), e.signature.clone()),
                    None => ("JIT.App".to_string(), "(unresolved jit)".to_string()),
                }
            }
            _ => bucket_label(bucket, kernel),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codemap::{map_path, render_map, CodeMapEntry};
    use sim_cpu::HwEvent;
    use sim_jvm::BootImage;

    fn bucket(origin: SampleOrigin, addr: u64, epoch: u64) -> SampleBucket {
        SampleBucket {
            origin,
            event: HwEvent::Cycles,
            addr,
            epoch,
        }
    }

    fn setup() -> (Kernel, Pid) {
        let mut k = Kernel::new();
        let pid = k.spawn("jikesrvm");
        let mut boot = BootImage::jikes_standard();
        boot.install(&mut k, pid, 0x0900_0000);
        k.vfs.write(
            map_path(pid, 0),
            render_map(&[CodeMapEntry {
                addr: 0x6400_0040,
                size: 0x80,
                level: "O1".into(),
                signature: "app.Scanner.parseLine".into(),
            }])
            .into_bytes(),
        );
        (k, pid)
    }

    #[test]
    fn boot_image_samples_resolve_to_rvm_map_rows() {
        let (k, _) = setup();
        let r = ViprofResolver::load(&k).unwrap();
        let boot_id = k.images.find_by_name(BOOT_IMAGE_NAME).unwrap();
        let (img, sym) = r.label(&bucket(SampleOrigin::Image(boot_id), 0x10, 0), &k);
        assert_eq!(img, "RVM.map");
        assert_eq!(sym, sim_jvm::bootimage::well_known::INTERPRET);
        // Offset past the image → degrades, not panics.
        let (img, sym) = r.label(&bucket(SampleOrigin::Image(boot_id), 0xffff_ff00, 0), &k);
        assert_eq!((img.as_str(), sym.as_str()), ("RVM.code.image", "(no symbols)"));
    }

    #[test]
    fn jit_samples_resolve_through_code_maps() {
        let (k, pid) = setup();
        let r = ViprofResolver::load(&k).unwrap();
        let (img, sym) = r.label(&bucket(SampleOrigin::JitApp { pid }, 0x6400_0080, 0), &k);
        assert_eq!(img, "JIT.App");
        assert_eq!(sym, "app.Scanner.parseLine");
        // Later epochs chain backwards to the same entry.
        let (_, sym) = r.label(&bucket(SampleOrigin::JitApp { pid }, 0x6400_0080, 5), &k);
        assert_eq!(sym, "app.Scanner.parseLine");
        // Unknown address stays visibly unresolved.
        let (_, sym) = r.label(&bucket(SampleOrigin::JitApp { pid }, 0x7000_0000, 0), &k);
        assert_eq!(sym, "(unresolved jit)");
    }

    #[test]
    fn other_buckets_fall_back_to_oprofile_labels() {
        let (k, pid) = setup();
        let r = ViprofResolver::load(&k).unwrap();
        let (img, sym) = r.label(
            &bucket(SampleOrigin::Image(k.kernel_image), 0x3000, 0),
            &k,
        );
        assert_eq!((img.as_str(), sym.as_str()), ("vmlinux", "schedule"));
        let (img, _) = r.label(
            &bucket(
                SampleOrigin::Anon {
                    pid,
                    start: 0x1000,
                    end: 0x2000,
                },
                0x1800,
                0,
            ),
            &k,
        );
        assert!(img.starts_with("anon (range:0x1000-0x2000)"));
    }

    #[test]
    fn missing_artifacts_degrade_gracefully() {
        // Fresh kernel, no RVM.map, no code maps.
        let k = Kernel::new();
        let r = ViprofResolver::load(&k).unwrap();
        assert!(r.bootmap().is_empty());
        let (img, sym) = r.label(&bucket(SampleOrigin::JitApp { pid: Pid(1) }, 0x10, 0), &k);
        assert_eq!((img.as_str(), sym.as_str()), ("JIT.App", "(unresolved jit)"));
    }
}
