//! The vertically integrated sample resolver.
//!
//! Combines three sources to label every sample bucket:
//!
//! 1. epoch code maps (JIT.App samples → Java methods, §3.1–3.2);
//! 2. the boot-image map (`RVM.map` → VM-internal methods, §3.2);
//! 3. stock OProfile resolution for everything else (kernel, native
//!    libraries, binaries, residual anon).
//!
//! Resolution is *lossy by design* under damage: a pid whose maps are
//! unusable is skipped, bad map lines are quarantined, lost epochs are
//! salvaged from later maps — and every degradation is counted in a
//! [`ResolutionQuality`] report so the profile's trustworthiness is
//! itself measurable.

use crate::bootmap::BootMap;
use crate::codemap::{CodeMapSet, JIT_MAP_DIR};
use crate::error::ViprofError;
use crate::recover::{recover_codemaps, RecoveryReport};
use oprofile::report::bucket_label;
use oprofile::{SampleBucket, SampleDb, SampleOrigin};
use serde::Serialize;
use sim_cpu::{Pid, ProcKey};
use sim_jvm::bootimage::{BOOT_IMAGE_NAME, RVM_MAP_IMAGE_LABEL};
use sim_os::{ImageId, Kernel};
use std::collections::HashMap;
use viprof_telemetry::{names, Telemetry};

/// Per-run accounting of how well resolution went. Every sample in the
/// database lands in exactly one of `resolved` / `stale_epoch` /
/// `unresolved`, so `accounted()` always equals the database's sample
/// total — degraded runs lose *precision*, never samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolutionQuality {
    /// Samples attributed through the normal path (backward epoch chain,
    /// boot map, or stock image symbols).
    pub resolved: u64,
    /// JIT samples recovered by the forward-salvage path: attributed,
    /// but possibly to a stale occupant of the address.
    pub stale_epoch: u64,
    /// Samples with no attribution beyond their raw origin (unresolved
    /// JIT, anon ranges, unknown PCs).
    pub unresolved: u64,
    /// Samples whose resolution shard panicked and whose fallback
    /// re-resolution panicked too: present in the database, counted
    /// here instead of silently vanishing from the report.
    pub quarantined: u64,
    /// JIT samples stamped with a generation that has no maps of its
    /// own while *another* incarnation of the same pid does. Resolving
    /// them against the other incarnation's maps would attribute a dead
    /// process's cycles to its pid-reusing successor (or vice versa),
    /// so the resolver refuses and counts them here instead.
    pub cross_incarnation_blocked: u64,
    /// Samples that never reached the database (ring-buffer overflow).
    pub dropped: u64,
    /// Samples the database's admission cap refused (bounded memory).
    pub evicted: u64,
    /// Map lines quarantined during load.
    pub quarantined_lines: u64,
    /// Whole map files skipped as unusable.
    pub skipped_map_files: u64,
    /// Pids whose code maps could not be loaded at all.
    pub failed_pids: u64,
    /// Epochs missing from otherwise-present map chains.
    pub missing_epochs: u64,
}

impl ResolutionQuality {
    /// Emitted samples this report accounts for — by construction equal
    /// to `db.total_samples()`, even when shards panicked.
    pub fn accounted(&self) -> u64 {
        self.resolved
            + self.stale_epoch
            + self.unresolved
            + self.quarantined
            + self.cross_incarnation_blocked
    }
}

/// Per-incarnation resolution breakdown: one row per `(pid, gen)` that
/// appears in the sample database's JIT origins. Churn-heavy sessions
/// (VM restarts, pid reuse) surface here as multiple rows per pid, each
/// accounted independently — the report's proof that attribution never
/// leaked across an incarnation boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct IncarnationSummary {
    pub pid: u32,
    pub gen: u32,
    /// All JIT samples stamped with this incarnation.
    pub samples: u64,
    pub resolved: u64,
    pub stale_epoch: u64,
    pub unresolved: u64,
    /// Samples refused because only *other* incarnations of this pid
    /// had maps (see [`ResolutionQuality::cross_incarnation_blocked`]).
    pub blocked: u64,
}

/// Mirror one finished quality report into the registry's `resolve.*`
/// counters. Offline stages record deterministic work units (samples
/// accounted) in place of virtual cycles — post-processing runs outside
/// the simulated clock.
pub(crate) fn record_quality(registry: &Telemetry, q: &ResolutionQuality) {
    registry.counter(names::RESOLVE_SAMPLES_RESOLVED).add(q.resolved);
    registry
        .counter(names::RESOLVE_SAMPLES_STALE_EPOCH)
        .add(q.stale_epoch);
    registry
        .counter(names::RESOLVE_SAMPLES_UNRESOLVED)
        .add(q.unresolved);
    registry
        .counter(names::RESOLVE_SAMPLES_QUARANTINED)
        .add(q.quarantined);
    registry
        .counter(names::RESOLVE_SAMPLES_CROSS_INCARNATION_BLOCKED)
        .add(q.cross_incarnation_blocked);
    registry.counter(names::RESOLVE_SAMPLES_DROPPED).add(q.dropped);
    registry.counter(names::RESOLVE_SAMPLES_EVICTED).add(q.evicted);
    registry
        .counter(names::RESOLVE_QUARANTINED_LINES)
        .add(q.quarantined_lines);
    registry
        .counter(names::RESOLVE_SKIPPED_MAP_FILES)
        .add(q.skipped_map_files);
    registry.counter(names::RESOLVE_FAILED_PIDS).add(q.failed_pids);
    registry.counter(names::RESOLVE_MISSING_EPOCHS).add(q.missing_epochs);
    registry.stage(names::STAGE_RESOLVE_REPORT).record(q.accounted());
}

/// Discover incarnations with map directories: paths look like
/// `/var/lib/oprofile/jit/<pid>/<gen>/map.<epoch>` (or
/// `…/<pid>/<gen>/journal`).
pub(crate) fn discover_keys(kernel: &Kernel) -> Vec<ProcKey> {
    let prefix = format!("{JIT_MAP_DIR}/");
    let mut keys: Vec<ProcKey> = kernel
        .vfs
        .list(&prefix)
        .iter()
        .filter_map(|p| {
            let mut parts = p[prefix.len()..].split('/');
            let pid = parts.next()?.parse::<u32>().ok()?;
            let gen = parts.next()?.parse::<u32>().ok()?;
            Some(ProcKey::new(Pid(pid), gen))
        })
        .collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// How [`ViprofResolver::load_with`] should treat the on-disk map
/// artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ResolveOptions {
    /// Run the journal-replay recovery pass: per pid, pristine journal
    /// records are overlaid on the damaged disk state when a map
    /// journal exists; pids without one fall back to the plain
    /// degraded loader.
    pub recover: bool,
}

impl ResolveOptions {
    /// Options with the recovery pass enabled.
    pub fn recovered() -> ResolveOptions {
        ResolveOptions::default().with_recover(true)
    }

    /// Toggle the journal-replay recovery pass.
    pub fn with_recover(mut self, recover: bool) -> ResolveOptions {
        self.recover = recover;
        self
    }
}

/// Loaded post-processing state.
#[derive(Debug, Default)]
pub struct ViprofResolver {
    bootmap: BootMap,
    codemaps: HashMap<ProcKey, CodeMapSet>,
    boot_image: Option<ImageId>,
    /// Incarnations whose map sets failed to load (skipped, not fatal).
    failed_keys: Vec<ProcKey>,
    /// Mirror quality reports into this registry's `resolve.*` counters.
    /// Used by the legacy (non-engine) resolve path only — the engine
    /// carries its own handles so the two never double count.
    telemetry: Option<Telemetry>,
}

impl ViprofResolver {
    /// Load every map artifact from the machine's VFS, optionally
    /// through the journal-replay recovery pass
    /// ([`ResolveOptions::recover`]).
    ///
    /// One pid's unloadable maps must not abort post-processing for
    /// every other pid: such pids are recorded (their samples degrade to
    /// "(unresolved jit)") and loading continues. The returned
    /// [`RecoveryReport`] is all-zero when recovery was off or no
    /// journals existed.
    pub fn load_with(
        kernel: &Kernel,
        options: ResolveOptions,
    ) -> Result<(ViprofResolver, RecoveryReport), ViprofError> {
        let bootmap = BootMap::load(&kernel.vfs)?;
        let boot_image = kernel.images.find_by_name(BOOT_IMAGE_NAME);
        let mut codemaps = HashMap::new();
        let mut failed_keys = Vec::new();
        let mut report = RecoveryReport::default();
        for key in discover_keys(kernel) {
            if options.recover {
                if let Some((set, key_rec)) = recover_codemaps(&kernel.vfs, key) {
                    report.absorb(&key_rec);
                    codemaps.insert(key, set);
                    continue;
                }
            }
            match CodeMapSet::load(&kernel.vfs, key) {
                Ok(set) => {
                    codemaps.insert(key, set);
                }
                Err(_) => failed_keys.push(key),
            }
        }
        Ok((
            ViprofResolver {
                bootmap,
                codemaps,
                boot_image,
                failed_keys,
                telemetry: None,
            },
            report,
        ))
    }

    /// Mirror every subsequent [`ViprofResolver::quality`] report into
    /// `registry`'s `resolve.*` counters.
    pub fn set_telemetry(&mut self, registry: &Telemetry) {
        self.telemetry = Some(registry.clone());
    }

    pub fn codemaps(&self, key: impl Into<ProcKey>) -> Option<&CodeMapSet> {
        self.codemaps.get(&key.into())
    }

    /// Every loaded incarnation's map set, for index flattening.
    pub(crate) fn sets(&self) -> impl Iterator<Item = (&ProcKey, &CodeMapSet)> {
        self.codemaps.iter()
    }

    /// Pids that have at least one incarnation with loaded maps — the
    /// lookup behind cross-incarnation blocking.
    pub(crate) fn pids_with_maps(&self) -> std::collections::HashSet<u32> {
        self.codemaps.keys().map(|k| k.pid.0).collect()
    }

    /// The image id the boot image registered under, if installed.
    pub(crate) fn boot_image_id(&self) -> Option<ImageId> {
        self.boot_image
    }

    pub fn bootmap(&self) -> &BootMap {
        &self.bootmap
    }

    /// Incarnations whose maps were present but unloadable.
    pub fn failed_pids(&self) -> &[ProcKey] {
        &self.failed_keys
    }

    /// Label one bucket: (image column, symbol column).
    pub fn label(&self, bucket: &SampleBucket, kernel: &Kernel) -> (String, String) {
        match bucket.origin {
            // VM boot image: resolve through RVM.map; the paper prints
            // these rows under image name `RVM.map`.
            SampleOrigin::Image(id) if Some(id) == self.boot_image => {
                match self.bootmap.resolve(bucket.addr) {
                    Some(m) => (RVM_MAP_IMAGE_LABEL.to_string(), m.name.clone()),
                    None => (BOOT_IMAGE_NAME.to_string(), "(no symbols)".to_string()),
                }
            }
            // Registered-heap samples: epoch-chained code-map search
            // against the *stamped incarnation's* maps only, with the
            // forward-salvage fallback for damaged chains. A sample
            // whose generation has no maps stays unresolved even if a
            // different incarnation of the pid has maps — attribution
            // never crosses an incarnation boundary.
            SampleOrigin::JitApp { pid, gen } => {
                let resolved = self
                    .codemaps
                    .get(&ProcKey::new(pid, gen))
                    .and_then(|set| set.resolve_salvage(bucket.addr, bucket.epoch));
                match resolved {
                    Some((e, _)) => ("JIT.App".to_string(), e.signature.clone()),
                    None => ("JIT.App".to_string(), "(unresolved jit)".to_string()),
                }
            }
            _ => bucket_label(bucket, kernel),
        }
    }

    /// Classify every sample in `db` into the quality report. The same
    /// lookups `label` performs, aggregated: resolved / stale-epoch
    /// fallback / unresolved, plus the load-time damage counters.
    pub fn quality(&self, db: &SampleDb) -> ResolutionQuality {
        let mut q = ResolutionQuality {
            dropped: db.dropped,
            evicted: db.evicted,
            failed_pids: self.failed_keys.len() as u64,
            ..ResolutionQuality::default()
        };
        for set in self.codemaps.values() {
            q.quarantined_lines += set.quarantined_lines;
            q.skipped_map_files += set.skipped_files;
            q.missing_epochs += set.missing_epochs();
        }
        let pids_with_maps = self.pids_with_maps();
        for (bucket, count) in db.iter() {
            match bucket.origin {
                SampleOrigin::JitApp { pid, gen } => {
                    let key = ProcKey::new(pid, gen);
                    match self.codemaps.get(&key) {
                        Some(set) => match set.resolve_salvage(bucket.addr, bucket.epoch) {
                            Some((_, false)) => q.resolved += count,
                            Some((_, true)) => q.stale_epoch += count,
                            None => q.unresolved += count,
                        },
                        // No maps for this incarnation. If another
                        // incarnation of the pid has maps, the only
                        // reason these samples are unattributed is the
                        // isolation invariant — count them as blocked,
                        // not merely unresolved.
                        None if pids_with_maps.contains(&pid.0) => {
                            q.cross_incarnation_blocked += count
                        }
                        None => q.unresolved += count,
                    }
                }
                // Image-backed samples always attribute to at least the
                // image, boot-image ones through RVM.map.
                SampleOrigin::Image(_) => q.resolved += count,
                // Anon ranges and unknown PCs carry no symbol
                // information by definition.
                SampleOrigin::Anon { .. } | SampleOrigin::Unknown => q.unresolved += count,
            }
        }
        if let Some(t) = &self.telemetry {
            record_quality(t, &q);
        }
        q
    }

    /// Per-incarnation breakdown of `db`'s JIT samples, sorted by
    /// `(pid, gen)` — deterministic across runs and thread counts. The
    /// rows partition the JIT-origin subset of [`ViprofResolver::quality`]:
    /// summing any column over all rows reproduces the corresponding
    /// JIT share of the whole-run quality report.
    pub fn incarnations(&self, db: &SampleDb) -> Vec<IncarnationSummary> {
        let pids_with_maps = self.pids_with_maps();
        let mut rows: std::collections::BTreeMap<(u32, u32), IncarnationSummary> =
            Default::default();
        for (bucket, count) in db.iter() {
            let SampleOrigin::JitApp { pid, gen } = bucket.origin else {
                continue;
            };
            let row = rows
                .entry((pid.0, gen))
                .or_insert_with(|| IncarnationSummary {
                    pid: pid.0,
                    gen,
                    samples: 0,
                    resolved: 0,
                    stale_epoch: 0,
                    unresolved: 0,
                    blocked: 0,
                });
            row.samples += count;
            match self.codemaps.get(&ProcKey::new(pid, gen)) {
                Some(set) => match set.resolve_salvage(bucket.addr, bucket.epoch) {
                    Some((_, false)) => row.resolved += count,
                    Some((_, true)) => row.stale_epoch += count,
                    None => row.unresolved += count,
                },
                None if pids_with_maps.contains(&pid.0) => row.blocked += count,
                None => row.unresolved += count,
            }
        }
        rows.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codemap::{map_path, render_map, CodeMapEntry};
    use sim_cpu::HwEvent;
    use sim_jvm::BootImage;

    fn bucket(origin: SampleOrigin, addr: u64, epoch: u64) -> SampleBucket {
        SampleBucket {
            origin,
            event: HwEvent::Cycles,
            addr,
            epoch,
        }
    }

    fn setup() -> (Kernel, Pid) {
        let mut k = Kernel::new();
        let pid = k.spawn("jikesrvm");
        let mut boot = BootImage::jikes_standard();
        boot.install(&mut k, pid, 0x0900_0000);
        k.vfs.write(
            map_path(pid, 0),
            render_map(&[CodeMapEntry {
                addr: 0x6400_0040,
                size: 0x80,
                level: "O1".into(),
                signature: "app.Scanner.parseLine".into(),
            }])
            .into_bytes(),
        );
        (k, pid)
    }

    #[test]
    fn boot_image_samples_resolve_to_rvm_map_rows() {
        let (k, _) = setup();
        let r = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap().0;
        let boot_id = k.images.find_by_name(BOOT_IMAGE_NAME).unwrap();
        let (img, sym) = r.label(&bucket(SampleOrigin::Image(boot_id), 0x10, 0), &k);
        assert_eq!(img, "RVM.map");
        assert_eq!(sym, sim_jvm::bootimage::well_known::INTERPRET);
        // Offset past the image → degrades, not panics.
        let (img, sym) = r.label(&bucket(SampleOrigin::Image(boot_id), 0xffff_ff00, 0), &k);
        assert_eq!((img.as_str(), sym.as_str()), ("RVM.code.image", "(no symbols)"));
    }

    #[test]
    fn jit_samples_resolve_through_code_maps() {
        let (k, pid) = setup();
        let r = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap().0;
        let (img, sym) = r.label(&bucket(SampleOrigin::JitApp { pid, gen: 0 }, 0x6400_0080, 0), &k);
        assert_eq!(img, "JIT.App");
        assert_eq!(sym, "app.Scanner.parseLine");
        // Later epochs chain backwards to the same entry.
        let (_, sym) = r.label(&bucket(SampleOrigin::JitApp { pid, gen: 0 }, 0x6400_0080, 5), &k);
        assert_eq!(sym, "app.Scanner.parseLine");
        // Unknown address stays visibly unresolved.
        let (_, sym) = r.label(&bucket(SampleOrigin::JitApp { pid, gen: 0 }, 0x7000_0000, 0), &k);
        assert_eq!(sym, "(unresolved jit)");
    }

    #[test]
    fn other_buckets_fall_back_to_oprofile_labels() {
        let (k, pid) = setup();
        let r = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap().0;
        let (img, sym) = r.label(
            &bucket(SampleOrigin::Image(k.kernel_image), 0x3000, 0),
            &k,
        );
        assert_eq!((img.as_str(), sym.as_str()), ("vmlinux", "schedule"));
        let (img, _) = r.label(
            &bucket(
                SampleOrigin::Anon {
                    pid,
                    start: 0x1000,
                    end: 0x2000,
                },
                0x1800,
                0,
            ),
            &k,
        );
        assert!(img.starts_with("anon (range:0x1000-0x2000)"));
    }

    #[test]
    fn missing_artifacts_degrade_gracefully() {
        // Fresh kernel, no RVM.map, no code maps.
        let k = Kernel::new();
        let r = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap().0;
        assert!(r.bootmap().is_empty());
        let (img, sym) = r.label(&bucket(SampleOrigin::JitApp { pid: Pid(1), gen: 0 }, 0x10, 0), &k);
        assert_eq!((img.as_str(), sym.as_str()), ("JIT.App", "(unresolved jit)"));
    }

    #[test]
    fn one_bad_pid_does_not_abort_the_others() {
        let (mut k, good) = setup();
        // A second VM whose only map file is binary garbage.
        let bad = k.spawn("jikesrvm2");
        k.vfs.write(map_path(bad, 0), vec![0xff, 0xfe, 0x80]);
        let r = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap().0;
        assert_eq!(r.failed_pids(), &[ProcKey::new(bad, 0)]);
        assert!(r.codemaps(good).is_some(), "good pid still loaded");
        // The bad pid's samples degrade instead of erroring out.
        let (_, sym) = r.label(&bucket(SampleOrigin::JitApp { pid: bad, gen: 0 }, 0x10, 0), &k);
        assert_eq!(sym, "(unresolved jit)");
    }

    #[test]
    fn samples_never_resolve_across_incarnations() {
        // Only generation 0 of the pid has maps. A sample stamped with
        // generation 1 (the pid-reusing successor — or a predecessor's
        // ghost) must not borrow them.
        let (k, pid) = setup();
        let r = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap().0;
        let (_, sym) = r.label(&bucket(SampleOrigin::JitApp { pid, gen: 1 }, 0x6400_0080, 0), &k);
        assert_eq!(sym, "(unresolved jit)");
        let mut db = SampleDb::new();
        db.add(bucket(SampleOrigin::JitApp { pid, gen: 0 }, 0x6400_0080, 0), 10);
        db.add(bucket(SampleOrigin::JitApp { pid, gen: 1 }, 0x6400_0080, 0), 4);
        // A pid with no maps under ANY generation stays plain unresolved.
        db.add(bucket(SampleOrigin::JitApp { pid: Pid(99), gen: 3 }, 0x10, 0), 2);
        let q = r.quality(&db);
        assert_eq!(q.resolved, 10);
        assert_eq!(q.cross_incarnation_blocked, 4);
        assert_eq!(q.unresolved, 2);
        assert_eq!(q.accounted(), db.total_samples());
        // The per-incarnation breakdown partitions the same samples,
        // in deterministic (pid, gen) order.
        let inc = r.incarnations(&db);
        assert_eq!(inc.len(), 3);
        assert_eq!((inc[0].pid, inc[0].gen, inc[0].resolved), (pid.0, 0, 10));
        assert_eq!((inc[1].pid, inc[1].gen, inc[1].blocked), (pid.0, 1, 4));
        assert_eq!((inc[2].pid, inc[2].gen, inc[2].unresolved), (99, 3, 2));
        let total: u64 = inc.iter().map(|i| i.samples).sum();
        assert_eq!(
            total,
            q.resolved + q.stale_epoch + q.cross_incarnation_blocked + 2
        );
    }

    #[test]
    fn salvage_recovers_samples_from_lost_epochs() {
        let (mut k, pid) = setup();
        // A method that only exists in epoch 4's map (earlier maps for
        // its address range were never written).
        k.vfs.write(
            map_path(pid, 4),
            render_map(&[CodeMapEntry {
                addr: 0x6500_0000,
                size: 0x40,
                level: "base".into(),
                signature: "app.Late.comer".into(),
            }])
            .into_bytes(),
        );
        let r = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap().0;
        // A sample tagged epoch 1 on that address: backward chain
        // misses, forward salvage attributes it (stale).
        let (_, sym) = r.label(&bucket(SampleOrigin::JitApp { pid, gen: 0 }, 0x6500_0010, 1), &k);
        assert_eq!(sym, "app.Late.comer");
    }

    #[test]
    fn quality_accounts_for_every_sample() {
        let (k, pid) = setup();
        let boot_id = k.images.find_by_name(BOOT_IMAGE_NAME).unwrap();
        let mut db = SampleDb::new();
        db.add(bucket(SampleOrigin::JitApp { pid, gen: 0 }, 0x6400_0080, 0), 10);
        db.add(bucket(SampleOrigin::JitApp { pid, gen: 0 }, 0x7000_0000, 0), 3);
        db.add(bucket(SampleOrigin::Image(boot_id), 0x10, 0), 5);
        db.add(bucket(SampleOrigin::Unknown, 0x0, 0), 2);
        db.dropped = 7;
        let r = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap().0;
        let q = r.quality(&db);
        assert_eq!(q.resolved, 15);
        assert_eq!(q.unresolved, 5);
        assert_eq!(q.stale_epoch, 0);
        assert_eq!(q.dropped, 7);
        assert_eq!(q.accounted(), db.total_samples());
    }

    #[test]
    fn load_recovered_replays_journals_and_matches_plain_load_without_them() {
        use crate::codemap::journal_path;
        use sim_os::journal::KIND_CODE_MAP;
        use sim_os::JournalWriter;
        // Without any journal, recovery degenerates to the plain loader.
        let (k, pid) = setup();
        let (r, report) = ViprofResolver::load_with(&k, ResolveOptions::recovered()).unwrap();
        assert_eq!(report, crate::recover::RecoveryReport::default());
        assert!(r.codemaps(pid).is_some());
        // Tear epoch 0's map on disk but journal the pristine render:
        // recovery resolves what plain load cannot.
        let (mut k, pid) = setup();
        let pristine = k.vfs.read(&map_path(pid, 0)).unwrap().to_vec();
        k.vfs.write(map_path(pid, 0), pristine[..10].to_vec());
        let mut payload = 0u64.to_le_bytes().to_vec();
        payload.extend_from_slice(&pristine);
        let mut w = JournalWriter::create(&mut k.vfs, journal_path(pid));
        w.append(&mut k.vfs, KIND_CODE_MAP, &payload);
        let degraded = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap().0;
        let (_, sym) = degraded.label(&bucket(SampleOrigin::JitApp { pid, gen: 0 }, 0x6400_0080, 0), &k);
        assert_eq!(sym, "(unresolved jit)");
        let (recovered, report) = ViprofResolver::load_with(&k, ResolveOptions::recovered()).unwrap();
        assert_eq!(report.journals_scanned, 1);
        assert_eq!(report.records_replayed, 1);
        assert_eq!(report.epochs_recovered, 1);
        let (_, sym) = recovered.label(&bucket(SampleOrigin::JitApp { pid, gen: 0 }, 0x6400_0080, 0), &k);
        assert_eq!(sym, "app.Scanner.parseLine");
    }

    #[test]
    fn quality_mirrors_into_attached_telemetry() {
        let (k, pid) = setup();
        let mut db = SampleDb::new();
        db.add(bucket(SampleOrigin::JitApp { pid, gen: 0 }, 0x6400_0080, 0), 10);
        db.add(bucket(SampleOrigin::Unknown, 0x0, 0), 2);
        db.dropped = 3;
        let mut r = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap().0;
        let t = Telemetry::default();
        r.set_telemetry(&t);
        let q = r.quality(&db);
        let snap = t.snapshot();
        assert_eq!(snap.counter(names::RESOLVE_SAMPLES_RESOLVED), q.resolved);
        assert_eq!(snap.counter(names::RESOLVE_SAMPLES_UNRESOLVED), q.unresolved);
        assert_eq!(snap.counter(names::RESOLVE_SAMPLES_DROPPED), 3);
        let stage = snap.stage(names::STAGE_RESOLVE_REPORT).expect("stage recorded");
        assert_eq!(stage.entries, 1);
        assert_eq!(stage.cycles, q.accounted());
    }

    #[test]
    fn quality_separates_stale_from_resolved() {
        let (mut k, pid) = setup();
        k.vfs.write(
            map_path(pid, 4),
            render_map(&[CodeMapEntry {
                addr: 0x6500_0000,
                size: 0x40,
                level: "base".into(),
                signature: "app.Late.comer".into(),
            }])
            .into_bytes(),
        );
        let mut db = SampleDb::new();
        // Backward hit.
        db.add(bucket(SampleOrigin::JitApp { pid, gen: 0 }, 0x6400_0080, 2), 4);
        // Forward salvage.
        db.add(bucket(SampleOrigin::JitApp { pid, gen: 0 }, 0x6500_0010, 1), 6);
        let r = ViprofResolver::load_with(&k, ResolveOptions::default()).unwrap().0;
        let q = r.quality(&db);
        assert_eq!(q.resolved, 4);
        assert_eq!(q.stale_epoch, 6);
        assert_eq!(q.accounted(), db.total_samples());
        // Epochs 1-3 are absent between map.0 and map.4.
        assert_eq!(q.missing_epochs, 3);
    }
}
