//! Cross-layer call-sequence profiles.
//!
//! Paper §4.2: "VIProf also extends the call graph functionality of
//! Oprofile to include call sequence profiles across layers." The VM
//! Agent samples call edges (Java→Java, Java→native) and records them
//! here; the report shows the hottest edges regardless of which layer
//! the endpoints live in.

use std::collections::HashMap;

/// Sampled caller→callee edge counts.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    edges: HashMap<(String, String), u64>,
}

impl CallGraph {
    pub fn new() -> Self {
        CallGraph::default()
    }

    pub fn add_edge(&mut self, caller: &str, callee: &str) {
        self.add_edge_n(caller, callee, 1);
    }

    pub fn add_edge_n(&mut self, caller: &str, callee: &str, n: u64) {
        *self
            .edges
            .entry((caller.to_string(), callee.to_string()))
            .or_insert(0) += n;
    }

    /// Total recorded edge samples.
    pub fn total_edges(&self) -> u64 {
        self.edges.values().sum()
    }

    pub fn distinct_edges(&self) -> usize {
        self.edges.len()
    }

    /// Hottest `n` edges, count-descending (name-ascending tiebreak for
    /// determinism).
    pub fn top_edges(&self, n: usize) -> Vec<(&str, &str, u64)> {
        let mut v: Vec<(&str, &str, u64)> = self
            .edges
            .iter()
            .map(|((a, b), c)| (a.as_str(), b.as_str(), *c))
            .collect();
        v.sort_by(|x, y| y.2.cmp(&x.2).then_with(|| (x.0, x.1).cmp(&(y.0, y.1))));
        v.truncate(n);
        v
    }

    /// Fan-out of one caller: callees with counts.
    pub fn callees_of(&self, caller: &str) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self
            .edges
            .iter()
            .filter(|((a, _), _)| a == caller)
            .map(|((_, b), c)| (b.as_str(), *c))
            .collect();
        v.sort_by(|x, y| y.1.cmp(&x.1).then_with(|| x.0.cmp(y.0)));
        v
    }

    /// Graphviz DOT rendering of the top `n` edges (cross-layer call
    /// graph, ready for `dot -Tsvg`). Edge width scales with weight.
    pub fn render_dot(&self, n: usize) -> String {
        fn quote(s: &str) -> String {
            format!("\"{}\"", s.replace('"', "\\\""))
        }
        let top = self.top_edges(n);
        let max = top.first().map(|(_, _, c)| *c).unwrap_or(1).max(1);
        let mut out = String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
        for (a, b, c) in &top {
            let w = 1.0 + 4.0 * *c as f64 / max as f64;
            out.push_str(&format!(
                "  {} -> {} [label={c}, penwidth={w:.2}];\n",
                quote(a),
                quote(b)
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Text rendering of the top edges.
    pub fn render_text(&self, n: usize) -> String {
        let total = self.total_edges().max(1);
        let mut s = String::from("samples  %        caller -> callee\n");
        for (a, b, c) in self.top_edges(n) {
            s.push_str(&format!(
                "{:<9}{:<9.4}{} -> {}\n",
                c,
                100.0 * c as f64 / total as f64,
                a,
                b
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_accumulate() {
        let mut g = CallGraph::new();
        g.add_edge("a", "b");
        g.add_edge("a", "b");
        g.add_edge("a", "c");
        assert_eq!(g.total_edges(), 3);
        assert_eq!(g.distinct_edges(), 2);
    }

    #[test]
    fn top_edges_ordered_and_truncated() {
        let mut g = CallGraph::new();
        for _ in 0..5 {
            g.add_edge("hot", "callee");
        }
        g.add_edge("cold", "callee");
        let top = g.top_edges(1);
        assert_eq!(top, vec![("hot", "callee", 5)]);
    }

    #[test]
    fn callees_of_filters_by_caller() {
        let mut g = CallGraph::new();
        g.add_edge("m", "x");
        g.add_edge("m", "x");
        g.add_edge("m", "memset");
        g.add_edge("other", "x");
        assert_eq!(g.callees_of("m"), vec![("x", 2), ("memset", 1)]);
        assert!(g.callees_of("nobody").is_empty());
    }

    #[test]
    fn render_contains_cross_layer_edge() {
        let mut g = CallGraph::new();
        g.add_edge("dacapo.ps.Scanner.parseLine", "memset");
        let text = g.render_text(10);
        assert!(text.contains("dacapo.ps.Scanner.parseLine -> memset"));
    }

    #[test]
    fn dot_rendering_is_well_formed() {
        let mut g = CallGraph::new();
        g.add_edge_n("a", "b", 10);
        g.add_edge_n("a", "c\"quoted", 5);
        let dot = g.render_dot(10);
        assert!(dot.starts_with("digraph callgraph {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("\"a\" -> \"b\" [label=10, penwidth=5.00];"));
        assert!(dot.contains("c\\\"quoted"), "quotes escaped: {dot}");
    }
}
