//! # viprof — Vertically Integrated Profiler
//!
//! The paper's contribution: a set of OProfile extensions that make
//! samples from dynamically generated (JIT) code and from a Java-in-Java
//! VM's boot image attributable to *methods*, unified with kernel,
//! native-library and VM-internal samples in one profile.
//!
//! The three mechanisms, mapped to modules:
//!
//! * **Runtime Profiler** ([`runtime`] + [`registry`]) — the VM
//!   registers its PID and heap boundaries; the extended NMI logging
//!   path consults the registration *before* the anonymous-region
//!   fallback and logs hits as `JIT.App` samples tagged with the current
//!   GC epoch (paper §3).
//! * **VM Agent** ([`agent`] + [`codemap`]) — hooks in the VM's
//!   compile/recompile path log fresh code bodies; the GC move hook only
//!   *flags* moved bodies; just before each collection the agent writes
//!   a partial code map for the ending epoch (§3.1).
//! * **Post-processing** ([`resolve`], [`bootmap`], [`report`]) —
//!   samples are resolved against their epoch's code map, walking
//!   backwards through earlier maps until the most recent occupant of
//!   that address is found; boot-image samples are resolved through the
//!   VM build's `RVM.map` (§3.2).
//!
//! The production resolution path flattens each pid's epoch chain into
//! a [`flatindex::FlatIndex`] (one binary search per sample instead of
//! a per-epoch walk) and resolves the sample database across hash
//! shards on scoped threads ([`engine::ResolutionEngine`]) — with
//! results bit-identical to the reference walk in [`resolve`].
//!
//! [`session::Viprof`] wires everything together; [`callgraph`] adds the
//! cross-layer call-sequence profiles §4.2 mentions; [`xen`] implements
//! the §5 future work (hypervisor layer + multiple concurrent stacks,
//! XenoProf-style). The `viprof-report` binary post-processes exported
//! sessions offline, like `opreport` after `opcontrol --stop`.

pub mod agent;
pub mod bootmap;
pub mod callgraph;
pub mod codemap;
pub mod engine;
pub mod error;
pub mod faults;
pub mod flatindex;
pub mod live;
pub mod recover;
pub mod registry;
pub mod report;
pub mod resolve;
pub mod runtime;
pub mod session;
pub mod xen;

pub use agent::{AgentStats, MapFaultStats, MapFaults, VmAgent};
pub use bootmap::BootMap;
pub use callgraph::CallGraph;
pub use codemap::{CodeMapEntry, CodeMapSet, EpochMap, ParsedMap, JIT_MAP_DIR};
pub use engine::{ResolutionEngine, ShardPoison};
pub use error::ViprofError;
pub use faults::{ChurnSchedule, FaultPlan, FaultReport};
pub use flatindex::FlatIndex;
pub use live::{LiveEngine, LiveSink, LiveSpec};
pub use recover::{recover_codemaps, recover_sample_db, PidRecovery, RecoveredDb, RecoveryReport};
pub use registry::{JitRegistry, RegisterOutcome, SharedRegistry};
pub use report::viprof_report;
pub use resolve::{IncarnationSummary, ResolutionQuality, ResolveOptions, ViprofResolver};
pub use runtime::ViprofExtension;
pub use session::{
    FileDigest, ReportSpec, SessionBuilder, SessionReport, Viprof, SESSION_MANIFEST,
    SESSION_META_IMAGES, SESSION_META_PROCESSES,
};
pub use xen::{DomainId, DomainTable, Hypervisor, XenScheduler};
