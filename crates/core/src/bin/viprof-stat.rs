//! `viprof-stat` — telemetry inspection CLI.
//!
//! Reads the self-telemetry a session exported alongside its samples
//! (`/var/log/viprof/telemetry.json` inside the session directory) and
//! prints a pipeline health summary: sample flow, drop rates, daemon
//! and supervisor behaviour, resolution quality ratios, per-stage
//! breakdown, and the flight-recorder tail.
//!
//! ```text
//! viprof-stat --schema
//! viprof-stat --selftest
//! viprof-stat <session-dir> [--json] [--health] [--recover] [--threads <n>] [--events <n>] [--histograms]
//!
//!   --schema     print the metric catalog (one `<kind> <name>` line
//!                per metric) — diffed against scripts/telemetry-schema.txt
//!                by scripts/verify.sh
//!   --selftest   run a synthetic in-memory session end to end and
//!                check its telemetry export; exits non-zero on failure
//!   --json       print the session's runtime telemetry snapshot as
//!                canonical JSON instead of the summary (stdout is
//!                exactly one JSON document; status goes to stderr)
//!   --health     evaluate the default health rules over the session's
//!                exported timeline and print the findings (with
//!                --json: the health report as canonical JSON)
//!   --recover    tolerate manifest violations when importing
//!   --threads N  resolve across N shards for the resolve-side metrics
//!   --events N   show the last N flight-recorder events (default 10)
//!   --histograms print every histogram's per-bucket log2 rows after
//!                the summary (the summary shows only quantile-ish
//!                spreads)
//! ```

use oprofile::{OpConfig, Oprofile, ReportOptions};
use viprof::{ReportSpec, Viprof};
use viprof_telemetry::{
    bucket_hi, bucket_lo, log2_rows, names, HealthReport, TelemetrySnapshot, Timeline,
};

fn usage() -> ! {
    eprintln!(
        "usage: viprof-stat --schema | --selftest | <session-dir> \
         [--json] [--health] [--recover] [--threads <n>] [--events <n>] [--histograms]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(first) = args.next() else { usage() };
    match first.as_str() {
        "--schema" => {
            for line in names::schema_lines() {
                println!("{line}");
            }
            return;
        }
        "--selftest" => {
            selftest();
            return;
        }
        _ => {}
    }

    let dir = std::path::PathBuf::from(first);
    let mut json = false;
    let mut health = false;
    let mut recover = false;
    let mut threads = 1usize;
    let mut tail = 10usize;
    let mut histograms = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--json" => json = true,
            "--health" => health = true,
            "--recover" => recover = true,
            "--histograms" => histograms = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--events" => {
                tail = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }

    let (kernel, mismatches) = match Viprof::import_session_lenient(&dir) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("viprof-stat: {e}");
            std::process::exit(1);
        }
    };
    if !recover && !mismatches.is_empty() {
        for m in &mismatches {
            eprintln!("viprof-stat: {m}");
        }
        eprintln!("viprof-stat: session fails integrity checks (use --recover to proceed)");
        std::process::exit(1);
    }
    for m in &mismatches {
        eprintln!("viprof-stat: WARNING: {m}");
    }

    let runtime = match kernel.vfs.read(oprofile::TELEMETRY_PATH) {
        Some(raw) => match std::str::from_utf8(raw)
            .map_err(|e| e.to_string())
            .and_then(TelemetrySnapshot::from_json)
        {
            Ok(snap) => snap,
            Err(e) => {
                eprintln!("viprof-stat: corrupt runtime telemetry: {e}");
                std::process::exit(1);
            }
        },
        None => {
            eprintln!(
                "viprof-stat: no runtime telemetry at {} (pre-telemetry export?)",
                oprofile::TELEMETRY_PATH
            );
            std::process::exit(1);
        }
    };

    if health {
        let report = match kernel.vfs.read(oprofile::TIMELINE_PATH) {
            Some(raw) => match std::str::from_utf8(raw)
                .map_err(|e| e.to_string())
                .and_then(Timeline::from_json)
            {
                Ok(timeline) => HealthReport::evaluate(&timeline),
                Err(e) => {
                    eprintln!("viprof-stat: corrupt timeline export: {e}");
                    std::process::exit(1);
                }
            },
            None => {
                eprintln!(
                    "viprof-stat: no timeline at {} (pre-timeline export?)",
                    oprofile::TIMELINE_PATH
                );
                std::process::exit(1);
            }
        };
        if json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.render_text());
        }
        return;
    }

    if json {
        // Re-serialize: the output is the canonical deterministic form
        // regardless of how the file on disk was formatted.
        println!("{}", runtime.to_json());
        return;
    }

    // Resolve-side metrics: re-run the resolve pass over the exported
    // database, if one is present (its telemetry is deterministic, so
    // "re-run" and "what the session saw" agree).
    let resolve = kernel
        .vfs
        .read(oprofile::SAMPLES_PATH)
        .and_then(|raw| oprofile::SampleDb::from_bytes(raw).ok())
        .and_then(|db| {
            let spec = ReportSpec::default()
                .with_options(ReportOptions::default())
                .with_recover(recover)
                .threads(threads);
            Viprof::make_report(&db, &kernel, &spec).ok()
        });

    println!("session {}", dir.display());
    print_flow(&runtime);
    print_pipeline(&runtime);
    if let Some(report) = &resolve {
        print_resolution(&report.telemetry);
    }
    print_stages(&runtime, resolve.as_ref().map(|r| &r.telemetry));
    if histograms {
        print_histograms(&runtime, resolve.as_ref().map(|r| &r.telemetry));
    }
    print_events(&runtime, tail);
}

/// Per-bucket log2 rows for every histogram — the full distribution
/// behind the summary's one-line spreads. Formatting shared with
/// `viprof-trace --top` via [`log2_rows`].
fn print_histograms(runtime: &TelemetrySnapshot, resolve: Option<&TelemetrySnapshot>) {
    println!("-- histograms (log2 buckets) --");
    for snap in std::iter::once(runtime).chain(resolve) {
        for h in &snap.histograms {
            println!("  {} — count {}, sum {}", h.name, h.count, h.sum);
            for row in log2_rows(&h.buckets) {
                println!("    {row}");
            }
        }
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn print_flow(t: &TelemetrySnapshot) {
    let delivered = t.counter(names::CPU_SAMPLES_DELIVERED);
    let pushed = t.counter(names::BUFFER_PUSHED);
    let dropped = t.counter(names::BUFFER_DROPPED);
    println!("-- sample flow --");
    println!("  nmi samples delivered   {delivered}");
    println!("  suppressed (skipped nmi) {}", t.counter(names::CPU_SAMPLES_SUPPRESSED));
    println!(
        "  buffer pushed / dropped {pushed} / {dropped} ({:.2}% dropped)",
        pct(dropped, pushed + dropped)
    );
}

fn print_pipeline(t: &TelemetrySnapshot) {
    println!("-- daemon / journal --");
    println!(
        "  wakeups / drains / stalls {} / {} / {}",
        t.counter(names::DAEMON_WAKEUPS),
        t.counter(names::DAEMON_DRAINS),
        t.counter(names::DAEMON_STALLS)
    );
    println!(
        "  journal appends / commits / repairs {} / {} / {}",
        t.counter(names::JOURNAL_APPENDS),
        t.counter(names::JOURNAL_COMMITS),
        t.counter(names::JOURNAL_REPAIRS)
    );
    let restarts = t.counter(names::SUPERVISOR_RESTARTS);
    if restarts > 0 || t.counter(names::SUPERVISOR_MISSED) > 0 {
        println!(
            "  supervisor restarts / missed / redrained {} / {} / {} (last backoff {})",
            restarts,
            t.counter(names::SUPERVISOR_MISSED),
            t.counter(names::SUPERVISOR_REDRAINED_SAMPLES),
            t.gauge(names::SUPERVISOR_LAST_BACKOFF)
        );
    }
    let backoffs = t.counter(names::GOVERNOR_BACKOFFS);
    let recoveries = t.counter(names::GOVERNOR_RECOVERIES);
    let misses = t.counter(names::DAEMON_DEADLINE_MISSES);
    if backoffs > 0 || recoveries > 0 || misses > 0 {
        println!(
            "  governor backoffs / recoveries / escalations {} / {} / {} \
             (period {}, {} deadline misses, {} evicted)",
            backoffs,
            recoveries,
            t.counter(names::GOVERNOR_ESCALATIONS),
            t.gauge(names::GOVERNOR_PERIOD),
            misses,
            t.counter(names::DB_EVICTED_SAMPLES)
        );
    }
    println!(
        "  agent maps written {} ({} entries), gc epochs {}",
        t.counter(names::AGENT_MAPS_WRITTEN),
        t.counter(names::AGENT_MAP_ENTRIES),
        t.counter(names::AGENT_GC_EPOCHS)
    );
    let registrations = t.counter(names::REGISTRY_REGISTRATIONS);
    let bumps = t.counter(names::REGISTRY_GENERATION_BUMPS);
    let reaps = t.counter(names::REGISTRY_REAPS);
    let dead_dropped = t.counter(names::DAEMON_DEAD_GEN_DROPPED);
    if bumps > 0 || reaps > 0 || dead_dropped > 0 {
        println!(
            "  process churn: {} registration(s), {} generation bump(s), \
             {} reap(s), {} dead-generation sample(s) dropped",
            registrations, bumps, reaps, dead_dropped
        );
    }
}

fn print_resolution(t: &TelemetrySnapshot) {
    let resolved = t.counter(names::RESOLVE_SAMPLES_RESOLVED);
    let stale = t.counter(names::RESOLVE_SAMPLES_STALE_EPOCH);
    let unresolved = t.counter(names::RESOLVE_SAMPLES_UNRESOLVED);
    let blocked = t.counter(names::RESOLVE_SAMPLES_CROSS_INCARNATION_BLOCKED);
    let total = resolved + stale + unresolved + blocked;
    println!("-- resolution --");
    println!(
        "  resolved {} ({:.2}%), stale-epoch {} ({:.2}%), unresolved {} ({:.2}%)",
        resolved,
        pct(resolved, total),
        stale,
        pct(stale, total),
        unresolved,
        pct(unresolved, total)
    );
    if blocked > 0 {
        println!(
            "  cross-incarnation blocked {} ({:.2}%) — attribution never crosses a restart",
            blocked,
            pct(blocked, total)
        );
    }
    println!(
        "  damage: {} quarantined lines, {} skipped map files, {} failed pids, {} missing epochs",
        t.counter(names::RESOLVE_QUARANTINED_LINES),
        t.counter(names::RESOLVE_SKIPPED_MAP_FILES),
        t.counter(names::RESOLVE_FAILED_PIDS),
        t.counter(names::RESOLVE_MISSING_EPOCHS)
    );
    let panics = t.counter(names::RESOLVE_SHARD_PANICS);
    if panics > 0 {
        println!(
            "  shard panics {} — {} sample(s) quarantined",
            panics,
            t.counter(names::RESOLVE_SAMPLES_QUARANTINED)
        );
    }
    let evicted = t.counter(names::RESOLVE_SAMPLES_EVICTED);
    if evicted > 0 {
        println!("  admission-cap evictions {evicted}");
    }
    if let Some(h) = t.histogram(names::RESOLVE_SHARD_SAMPLES) {
        let spread: Vec<String> = h
            .buckets
            .iter()
            .map(|(k, n)| format!("{}x[{}..{}]", n, bucket_lo(*k), bucket_hi(*k)))
            .collect();
        println!(
            "  shards {} — samples/shard {}",
            t.gauge(names::RESOLVE_SHARDS),
            spread.join(" ")
        );
    }
    println!("  report rows {}", t.counter(names::REPORT_ROWS));
}

fn print_stages(runtime: &TelemetrySnapshot, resolve: Option<&TelemetrySnapshot>) {
    println!("-- stages (virtual cycles; resolve stages count work units) --");
    for snap in std::iter::once(runtime).chain(resolve) {
        for s in &snap.stages {
            println!("  {:<24} {:>8} entries {:>14} units", s.name, s.entries, s.cycles);
        }
    }
}

fn print_events(t: &TelemetrySnapshot, tail: usize) {
    println!(
        "-- flight recorder ({} events, {} evicted) --",
        t.events.len(),
        t.events_dropped
    );
    let skip = t.events.len().saturating_sub(tail);
    for e in &t.events[skip..] {
        let fields: Vec<String> = e
            .fields
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        println!(
            "  [{:>12}] {:<24} {} {}",
            e.cycles,
            e.kind,
            e.detail,
            fields.join(" ")
        );
    }
}

/// End-to-end smoke: a tiny in-memory session must export telemetry
/// that parses, round-trips byte-identically, and accounts for its own
/// sample flow. Run by `scripts/verify.sh`.
fn selftest() {
    use sim_cpu::{BlockExec, CpuMode};
    use sim_os::{Machine, MachineConfig};

    let mut m = Machine::new(MachineConfig::default());
    let pid = m.kernel.spawn("selftest");
    let op = Oprofile::start(&mut m, OpConfig::time_at(10_000));
    m.exec(&BlockExec::compute(pid, CpuMode::User, (0x1000, 0x2000), 1_000_000));
    op.stop(&mut m);

    let raw = m
        .kernel
        .vfs
        .read(oprofile::TELEMETRY_PATH)
        .expect("session exports telemetry");
    let text = std::str::from_utf8(raw).expect("telemetry is utf-8");
    let snap = TelemetrySnapshot::from_json(text).expect("telemetry parses");
    assert_eq!(snap.to_json(), text, "canonical JSON round-trips");
    assert_eq!(snap.counter(names::SESSION_INSTALLS), 1);
    assert_eq!(snap.counter(names::SESSION_STOPS), 1);
    let delivered = snap.counter(names::CPU_SAMPLES_DELIVERED);
    assert!(delivered > 0, "sampling ran");
    assert_eq!(
        snap.counter(names::BUFFER_PUSHED) + snap.counter(names::BUFFER_DROPPED),
        delivered,
        "every delivered sample was pushed or counted dropped"
    );
    assert_eq!(snap.events_of(names::EVENT_SESSION_STOP).len(), 1);

    // The timeline export must parse, round-trip byte-identically, and
    // telescope: its per-window deltas must sum to the cumulative
    // counters of the telemetry snapshot written at the same stop.
    let raw = m
        .kernel
        .vfs
        .read(oprofile::TIMELINE_PATH)
        .expect("session exports a timeline");
    let text = std::str::from_utf8(raw).expect("timeline is utf-8");
    let timeline = Timeline::from_json(text).expect("timeline parses");
    assert_eq!(timeline.to_json(), text, "canonical timeline JSON round-trips");
    assert!(!timeline.is_empty(), "drains sampled the timeline");
    for name in [names::CPU_SAMPLES_DELIVERED, names::BUFFER_PUSHED] {
        let telescoped: u64 = timeline.windows().iter().map(|w| w.delta(name)).sum();
        assert_eq!(telescoped, snap.counter(name), "{name} telescopes");
    }
    // Health is a pure function of the timeline: findings must agree
    // with the cumulative counters (no false positives, no misses).
    let report = HealthReport::evaluate(&timeline);
    assert_eq!(
        report.finding(names::HEALTH_BUFFER_OVERFLOW).is_some(),
        snap.counter(names::BUFFER_DROPPED) > 0,
        "overflow finding tracks the dropped counter"
    );
    assert!(report.finding(names::HEALTH_JOURNAL_REPAIR).is_none());
    assert_eq!(
        HealthReport::from_json(&report.to_json()),
        Ok(report),
        "health report JSON round-trips"
    );

    println!(
        "viprof-stat: selftest ok ({} samples, {} metrics, {} timeline window(s))",
        delivered,
        snap.counters.len() + snap.gauges.len() + snap.histograms.len() + snap.stages.len(),
        timeline.len()
    );
}
