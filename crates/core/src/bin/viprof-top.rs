//! `viprof-top` — streaming profile viewer.
//!
//! Replays an exported session's sample-batch journal through the
//! [`viprof::LiveEngine`] in drain order — the same engine a running
//! session feeds through the daemon's drain sink — and renders the
//! evolving profile the way `top` renders processes: a snapshot every
//! `--interval` batches, and the sealed final profile at the end. The
//! final profile is bit-identical to `viprof-report` over the same
//! session.
//!
//! ```text
//! viprof-top <session-dir> [--interval <n>] [--json] [--rows <n>] [--threads <n>]
//!
//!   --interval N  print a snapshot every N replayed batches
//!                 (default 0 = only the sealed final profile)
//!   --json        print the sealed final snapshot as JSON instead of
//!                 the table; every human-readable line (mid-run
//!                 snapshots, warnings) moves to stderr so stdout is
//!                 pure JSON
//!   --rows N      show at most N rows per snapshot (default 20)
//!   --threads N   resolve snapshots across N shards (default 1)
//! ```

use viprof::{LiveEngine, LiveSpec, ReportSpec, SessionReport, Viprof};

fn usage() -> ! {
    eprintln!(
        "usage: viprof-top <session-dir> [--interval <n>] [--json] [--rows <n>] [--threads <n>]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(first) = args.next() else { usage() };
    let dir = std::path::PathBuf::from(first);
    let mut interval = 0u64;
    let mut json = false;
    let mut rows = 20usize;
    let mut threads = 1usize;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--json" => json = true,
            "--interval" => {
                interval = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--rows" => {
                rows = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }

    let kernel = match Viprof::import_session(&dir) {
        Ok(kernel) => kernel,
        Err(e) => {
            eprintln!("viprof-top: {e}");
            std::process::exit(1);
        }
    };
    let Some(scan) = sim_os::journal::scan(&kernel.vfs, oprofile::SAMPLE_JOURNAL_PATH) else {
        eprintln!(
            "viprof-top: no sample journal at {} — re-export the session \
             with journaling on (`Viprof::builder().journal(true)`)",
            oprofile::SAMPLE_JOURNAL_PATH
        );
        std::process::exit(1);
    };

    // Offline replay keeps every frozen index: the whole journal
    // references a fixed on-disk map set, so there is nothing to
    // reclaim mid-stream. Traced (v2) batch records replay with their
    // span context; untagged v1 records replay without one.
    let mut live = LiveEngine::new(LiveSpec::new().with_drop_frozen(false));
    let spec = ReportSpec::default().threads(threads);
    let mut replayed = 0u64;
    for rec in &scan.records {
        let (ctx, body) = match rec.kind {
            sim_os::journal::KIND_SAMPLE_BATCH => (None, rec.payload.as_slice()),
            sim_os::journal::KIND_SAMPLE_BATCH_TRACED => {
                let Some((ctx, body)) = sim_os::journal::split_traced_payload(&rec.payload)
                else {
                    eprintln!("viprof-top: skipping torn traced record seq {}", rec.seq);
                    continue;
                };
                (Some(ctx), body)
            }
            _ => continue,
        };
        let Ok(batch) = oprofile::SampleDb::from_bytes(body) else {
            eprintln!("viprof-top: skipping corrupt batch record seq {}", rec.seq);
            continue;
        };
        live.on_batch(&kernel, Some(rec.seq), &batch, ctx);
        replayed += 1;
        if interval > 0 && replayed % interval == 0 {
            let snap = live.snapshot(&kernel, &spec);
            // Under --json, stdout carries nothing but the final JSON
            // document: progress snapshots go to stderr.
            status(json, format_args!("== after batch {replayed} =="));
            render(&snap, rows, json);
        }
    }
    if scan.damaged_bytes > 0 {
        eprintln!(
            "viprof-top: WARNING: {} damaged journal byte(s) ignored",
            scan.damaged_bytes
        );
    }

    live.seal(&kernel);
    let snap = live.snapshot(&kernel, &spec);
    if json {
        println!("{}", final_json(&snap, replayed));
    } else {
        println!("== sealed ({replayed} batches) ==");
        render(&snap, rows, false);
    }
}

/// A human-readable status line: stdout normally, stderr under
/// `--json` (stdout must stay machine-parseable).
fn status(json: bool, line: std::fmt::Arguments<'_>) {
    if json {
        eprintln!("{line}");
    } else {
        println!("{line}");
    }
}

fn render(snap: &SessionReport, rows: usize, to_stderr: bool) {
    let events: Vec<String> = snap.lines.events.iter().map(|e| format!("{e:?}")).collect();
    status(
        to_stderr,
        format_args!("{:>8}  {:<22} {:<34} {}", "%", "image", "symbol", events.join(" / ")),
    );
    for row in snap.lines.rows.iter().take(rows) {
        let counts: Vec<String> = row.counts.iter().map(u64::to_string).collect();
        status(
            to_stderr,
            format_args!(
                "{:>7.2}%  {:<22} {:<34} {}",
                row.percents.first().copied().unwrap_or(0.0),
                row.image,
                row.symbol,
                counts.join(" / ")
            ),
        );
    }
    if snap.lines.rows.len() > rows {
        status(
            to_stderr,
            format_args!("  ... {} more row(s)", snap.lines.rows.len() - rows),
        );
    }
    let q = &snap.quality;
    status(
        to_stderr,
        format_args!(
            "  accounted {} = {} resolved + {} stale + {} unresolved + {} blocked \
             + {} quarantined + {} dropped + {} evicted",
            q.accounted(),
            q.resolved,
            q.stale_epoch,
            q.unresolved,
            q.cross_incarnation_blocked,
            q.quarantined,
            q.dropped,
            q.evicted
        ),
    );
}

fn final_json(snap: &SessionReport, batches: u64) -> String {
    let q = &snap.quality;
    let value = serde_json::json!({
        "batches": batches,
        "events": snap.lines.events.iter().map(|e| format!("{e:?}")).collect::<Vec<_>>(),
        "rows": snap.lines.rows,
        "quality": {
            "resolved": q.resolved,
            "stale_epoch": q.stale_epoch,
            "unresolved": q.unresolved,
            "quarantined": q.quarantined,
            "cross_incarnation_blocked": q.cross_incarnation_blocked,
            "dropped": q.dropped,
            "evicted": q.evicted,
            "quarantined_lines": q.quarantined_lines,
            "skipped_map_files": q.skipped_map_files,
            "failed_pids": q.failed_pids,
            "missing_epochs": q.missing_epochs,
            "accounted": q.accounted(),
        },
        "incarnations": snap.incarnations,
    });
    serde_json::to_string_pretty(&value).expect("report serializes")
}
