//! `viprof-diff` — differential observability CLI.
//!
//! Loads two exported artifacts of the same kind and emits a
//! structured per-metric delta report, so a fixed-seed run can be
//! gated against a committed baseline (`scripts/verify.sh` does
//! exactly that with the artifacts under `results/`).
//!
//! Artifact kinds are detected from JSON shape (no flag needed):
//!
//! * runtime telemetry snapshot (`/var/log/viprof/telemetry.json`)
//! * timeline export (`/var/log/viprof/timeline.json`)
//! * health report (`viprof-stat --health --json`)
//! * Chrome trace export, compared by span-duration log2 buckets
//! * bench envelope (`results/BENCH_*.json`)
//! * a session directory (compared by resolve quality, lineage totals
//!   and report shape)
//! * any other JSON document, compared by its numeric leaves
//!
//! ```text
//! viprof-diff --selftest
//! viprof-diff --emit-baseline <dir>
//! viprof-diff <baseline> <candidate> [--json] [--tolerance <pct>]
//!
//!   --selftest        check the differ against the deterministic
//!                     synthetic session (same seed ⇒ zero deltas,
//!                     perturbed seed ⇒ nonzero, kind mismatch ⇒
//!                     error); exits non-zero on failure
//!   --emit-baseline D regenerate baseline_telemetry.json and
//!                     baseline_timeline.json in D from the synthetic
//!                     session at the committed seed
//!   --json            print the delta report as one JSON document on
//!                     stdout (status stays on stderr)
//!   --tolerance P     treat relative deltas up to P percent as noise
//!                     (default 0: any delta is a regression)
//! ```
//!
//! Exit codes: 0 — artifacts agree within tolerance; 1 — at least one
//! metric regressed; 2 — usage or unreadable/mismatched artifacts.

use std::collections::BTreeMap;
use std::path::Path;
use viprof::{ReportSpec, Viprof};
use viprof_telemetry::synthetic::{synthetic_session, BASELINE_SEED};
use viprof_telemetry::{HealthReport, Timeline, TraceSnapshot};

fn usage() -> ! {
    eprintln!(
        "usage: viprof-diff --selftest | --emit-baseline <dir> | \
         <baseline> <candidate> [--json] [--tolerance <pct>]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("viprof-diff: {msg}");
    std::process::exit(2);
}

/// One loaded artifact: its detected kind and the flattened numeric
/// metrics (dotted-path keys, sorted).
struct Artifact {
    kind: &'static str,
    metrics: BTreeMap<String, f64>,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(first) = args.next() else { usage() };
    match first.as_str() {
        "--selftest" => {
            selftest();
            return;
        }
        "--emit-baseline" => {
            let Some(dir) = args.next() else { usage() };
            if args.next().is_some() {
                usage();
            }
            emit_baseline(Path::new(&dir));
            return;
        }
        _ => {}
    }

    let Some(second) = args.next() else { usage() };
    let mut json = false;
    let mut tolerance = 0.0f64;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--json" => json = true,
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }

    let a = load_artifact(Path::new(&first)).unwrap_or_else(|e| fail(&format!("{first}: {e}")));
    let b = load_artifact(Path::new(&second)).unwrap_or_else(|e| fail(&format!("{second}: {e}")));
    if a.kind != b.kind {
        fail(&format!(
            "kind mismatch: {first} is a {} artifact, {second} is a {} artifact",
            a.kind, b.kind
        ));
    }

    let rows = diff_metrics(&a.metrics, &b.metrics);
    let regressions = rows
        .iter()
        .filter(|r| r.rel_pct > tolerance)
        .count();
    if json {
        println!("{}", render_json(a.kind, tolerance, &rows, regressions));
    } else {
        print!(
            "{}",
            render_text(a.kind, &first, &second, tolerance, &rows, regressions)
        );
    }
    if regressions > 0 {
        std::process::exit(1);
    }
}

/// One differing metric.
struct DiffRow {
    name: String,
    a: f64,
    b: f64,
    /// |b - a| relative to the baseline, in percent (a zero baseline
    /// makes any movement 100%).
    rel_pct: f64,
}

/// Compare two flattened metric maps over the union of their keys; a
/// key absent on one side reads as 0 there. Equal values produce no
/// row — two identical artifacts diff to an empty list.
fn diff_metrics(a: &BTreeMap<String, f64>, b: &BTreeMap<String, f64>) -> Vec<DiffRow> {
    let mut rows = Vec::new();
    let keys: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    for key in keys {
        let va = a.get(key).copied().unwrap_or(0.0);
        let vb = b.get(key).copied().unwrap_or(0.0);
        if va == vb {
            continue;
        }
        let base = va.abs();
        let rel_pct = if base > 0.0 {
            100.0 * (vb - va).abs() / base
        } else {
            100.0
        };
        rows.push(DiffRow {
            name: key.clone(),
            a: va,
            b: vb,
            rel_pct,
        });
    }
    rows
}

/// Trim trailing zeros so integers print as integers and the output
/// stays deterministic.
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

fn render_text(
    kind: &str,
    a_path: &str,
    b_path: &str,
    tolerance: f64,
    rows: &[DiffRow],
    regressions: usize,
) -> String {
    let mut out = format!("viprof-diff: {kind} — {a_path} vs {b_path}\n");
    for r in rows {
        let mark = if r.rel_pct > tolerance { "!" } else { "~" };
        out.push_str(&format!(
            "  {mark} {:<48} {} -> {} ({}{:.2}%)\n",
            r.name,
            fmt_num(r.a),
            fmt_num(r.b),
            if r.b >= r.a { "+" } else { "-" },
            r.rel_pct
        ));
    }
    out.push_str(&format!(
        "{} metric(s) changed, {} beyond tolerance ({tolerance}%): {}\n",
        rows.len(),
        regressions,
        if regressions == 0 { "PASS" } else { "FAIL" }
    ));
    out
}

fn render_json(kind: &str, tolerance: f64, rows: &[DiffRow], regressions: usize) -> String {
    let metrics: serde_json::Map<String, serde_json::Value> = rows
        .iter()
        .map(|r| {
            (
                r.name.clone(),
                serde_json::json!({
                    "baseline": r.a,
                    "candidate": r.b,
                    "delta": r.b - r.a,
                    "rel_pct": r.rel_pct,
                    "regression": r.rel_pct > tolerance,
                }),
            )
        })
        .collect();
    let value = serde_json::json!({
        "kind": kind,
        "tolerance_pct": tolerance,
        "changed": rows.len(),
        "regressions": regressions,
        "metrics": metrics,
    });
    serde_json::to_string_pretty(&value).expect("diff report serializes")
}

/// Load one artifact: a session directory, or a JSON file whose kind
/// is detected from its shape.
fn load_artifact(path: &Path) -> Result<Artifact, String> {
    if path.is_dir() {
        return load_session(path);
    }
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let value: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("not JSON: {e}"))?;
    let obj = value
        .as_object()
        .ok_or_else(|| "top level is not a JSON object".to_string())?;

    if obj.contains_key("traceEvents") {
        return load_trace(&text);
    }
    if obj.contains_key("name") && obj.contains_key("metrics") && obj.contains_key("gates") {
        let mut metrics = BTreeMap::new();
        for key in ["seed", "metrics", "gates"] {
            if let Some(v) = obj.get(key) {
                flatten(v, key, &mut metrics);
            }
        }
        return Ok(Artifact {
            kind: "bench",
            metrics,
        });
    }
    if obj.contains_key("counters") && obj.contains_key("events_dropped") {
        let mut metrics = BTreeMap::new();
        for (key, v) in obj {
            // The flight-recorder tail is a debugging aid, not a
            // comparable metric surface; everything else is.
            if key != "events" {
                flatten(v, key, &mut metrics);
            }
        }
        return Ok(Artifact {
            kind: "telemetry",
            metrics,
        });
    }
    if obj.contains_key("windows") && obj.contains_key("origin") {
        // Re-parse through the canonical importer so a hand-edited
        // non-telescoping file is rejected, not silently diffed.
        let timeline = Timeline::from_json(&text)?;
        let mut metrics = BTreeMap::new();
        flatten(&value, "timeline", &mut metrics);
        for (name, total) in timeline.top_movers(usize::MAX) {
            metrics.insert(format!("total.{name}"), total as f64);
        }
        return Ok(Artifact {
            kind: "timeline",
            metrics,
        });
    }
    if obj.contains_key("findings") && obj.len() == 1 {
        let report = HealthReport::from_json(&text)?;
        let mut metrics = BTreeMap::new();
        metrics.insert("findings".to_string(), report.findings.len() as f64);
        for f in &report.findings {
            for (field, v) in [
                ("total", f.total),
                ("windows", f.windows),
                ("peak", f.peak),
                ("longest_run", f.longest_run),
            ] {
                metrics.insert(format!("{}.{field}", f.rule), v as f64);
            }
        }
        return Ok(Artifact {
            kind: "health",
            metrics,
        });
    }
    let mut metrics = BTreeMap::new();
    flatten(&value, "", &mut metrics);
    Ok(Artifact {
        kind: "json",
        metrics,
    })
}

/// A Chrome trace export, compared by span count and the log2
/// span-duration histogram (per-span begin/end stamps would make every
/// configuration change a wall of noise; the duration distribution is
/// the comparable shape).
fn load_trace(text: &str) -> Result<Artifact, String> {
    let snap = TraceSnapshot::from_chrome_json(text)?;
    let mut metrics = BTreeMap::new();
    metrics.insert("spans".to_string(), snap.spans.len() as f64);
    metrics.insert("dropped".to_string(), snap.dropped as f64);
    for (bucket, count) in snap.duration_buckets(None) {
        metrics.insert(format!("duration_bucket.{bucket:02}"), count as f64);
    }
    Ok(Artifact {
        kind: "trace",
        metrics,
    })
}

/// A session directory: import it, re-resolve, and compare the
/// resolution surface (quality tally, lineage totals, report shape,
/// health findings). The resolve pass is deterministic, so two
/// same-seed sessions diff to zero.
fn load_session(dir: &Path) -> Result<Artifact, String> {
    let (kernel, mismatches) = Viprof::import_session_lenient(dir).map_err(|e| e.to_string())?;
    for m in &mismatches {
        eprintln!("viprof-diff: WARNING: {}: {m}", dir.display());
    }
    let raw = kernel
        .vfs
        .read(oprofile::SAMPLES_PATH)
        .ok_or_else(|| "no sample database in session".to_string())?;
    let db = oprofile::SampleDb::from_bytes(raw).map_err(|e| format!("corrupt sample database: {e}"))?;
    let report = Viprof::make_report(&db, &kernel, &ReportSpec::default())
        .map_err(|e| e.to_string())?;
    let q = &report.quality;
    let mut metrics = BTreeMap::new();
    for (name, v) in [
        ("lines.rows", report.lines.rows.len() as u64),
        ("quality.resolved", q.resolved),
        ("quality.stale_epoch", q.stale_epoch),
        ("quality.unresolved", q.unresolved),
        ("quality.dropped", q.dropped),
        ("quality.evicted", q.evicted),
        ("quality.quarantined", q.quarantined),
        ("quality.blocked", q.cross_incarnation_blocked),
        ("quality.quarantined_lines", q.quarantined_lines),
        ("quality.skipped_map_files", q.skipped_map_files),
        ("incarnations", report.incarnations.len() as u64),
        ("health.findings", report.health.findings.len() as u64),
    ] {
        metrics.insert(name.to_string(), v as f64);
    }
    for bucket in ["dropped", "evicted", "quarantined", "blocked"] {
        metrics.insert(
            format!("lineage.{bucket}"),
            report.lineage.total(bucket) as f64,
        );
    }
    Ok(Artifact {
        kind: "session",
        metrics,
    })
}

/// Recursively collect every numeric leaf into dotted-path keys
/// (array elements indexed). Strings and booleans are not comparable
/// magnitudes and are skipped.
fn flatten(value: &serde_json::Value, prefix: &str, out: &mut BTreeMap<String, f64>) {
    let path = |key: &str| {
        if prefix.is_empty() {
            key.to_string()
        } else {
            format!("{prefix}.{key}")
        }
    };
    match value {
        serde_json::Value::Number(n) => {
            if let Some(v) = n.as_f64() {
                out.insert(prefix.to_string(), v);
            }
        }
        serde_json::Value::Object(map) => {
            for (k, v) in map {
                flatten(v, &path(k), out);
            }
        }
        serde_json::Value::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten(v, &path(&i.to_string()), out);
            }
        }
        _ => {}
    }
}

/// Regenerate the committed fixed-seed baselines: the synthetic
/// session at [`BASELINE_SEED`], exported in canonical JSON.
fn emit_baseline(dir: &Path) {
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", dir.display())));
    let session = synthetic_session(BASELINE_SEED);
    for (name, data) in [
        ("baseline_telemetry.json", session.telemetry.to_json()),
        ("baseline_timeline.json", session.timeline.to_json()),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, data)
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
        eprintln!("viprof-diff: wrote {}", path.display());
    }
}

/// Differ smoke, run by `scripts/verify.sh`: the synthetic session is
/// deterministic, so the same seed must diff to zero, a perturbed seed
/// must not, and mixing kinds must be rejected.
fn selftest() {
    let dir = std::env::temp_dir().join(format!("viprof-diff-selftest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create selftest dir");
    let base = synthetic_session(BASELINE_SEED);
    let same = synthetic_session(BASELINE_SEED);
    let perturbed = synthetic_session(BASELINE_SEED + 1);

    let write = |name: &str, data: &str| {
        let path = dir.join(name);
        std::fs::write(&path, data).expect("write selftest artifact");
        path
    };
    let t0 = write("telemetry_a.json", &base.telemetry.to_json());
    let t1 = write("telemetry_b.json", &same.telemetry.to_json());
    let t2 = write("telemetry_c.json", &perturbed.telemetry.to_json());
    let l0 = write("timeline_a.json", &base.timeline.to_json());
    let l1 = write("timeline_b.json", &same.timeline.to_json());
    let l2 = write("timeline_c.json", &perturbed.timeline.to_json());

    let load = |p: &Path| load_artifact(p).expect("selftest artifact loads");
    for (a, b, kind) in [(&t0, &t1, "telemetry"), (&l0, &l1, "timeline")] {
        let (a, b) = (load(a), load(b));
        assert_eq!(a.kind, kind);
        assert_eq!(b.kind, kind);
        assert!(
            diff_metrics(&a.metrics, &b.metrics).is_empty(),
            "same seed must diff to zero for {kind}"
        );
        assert!(!a.metrics.is_empty(), "{kind} flattens to metrics");
    }
    for (a, b, kind) in [(&t0, &t2, "telemetry"), (&l0, &l2, "timeline")] {
        let rows = diff_metrics(&load(a).metrics, &load(b).metrics);
        assert!(!rows.is_empty(), "perturbed seed must move {kind} metrics");
        assert!(rows.iter().any(|r| r.rel_pct > 0.0));
    }
    assert_ne!(
        load(&t0).kind,
        load(&l0).kind,
        "telemetry and timeline detect as distinct kinds"
    );

    // The baseline emitter is the selftest's own generator: what it
    // writes must load and diff to zero against the in-memory session.
    emit_baseline(&dir);
    let emitted = load(&dir.join("baseline_timeline.json"));
    assert!(diff_metrics(&load(&l0).metrics, &emitted.metrics).is_empty());

    // Health over the synthetic timeline fires the burst findings, and
    // the health artifact round-trips through the differ too.
    let health = HealthReport::evaluate(&base.timeline);
    assert!(!health.is_healthy(), "synthetic burst fires findings");
    let h0 = write("health_a.json", &health.to_json());
    let loaded = load(&h0);
    assert_eq!(loaded.kind, "health");
    assert!(loaded.metrics["findings"] >= 2.0);

    let telemetry_metrics = load(&t0).metrics.len();
    let timeline_metrics = load(&l0).metrics.len();
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "viprof-diff: selftest ok ({telemetry_metrics} telemetry metric(s), \
         {timeline_metrics} timeline metric(s))"
    );
}
