//! `viprof-report` — offline post-processing CLI.
//!
//! Operates on a session directory exported by
//! `Viprof::export_session` (sample database, epoch code maps,
//! `RVM.map`, image/process metadata), the way `opreport` operates on
//! `/var/lib/oprofile` after `opcontrol --stop`.
//!
//! ```text
//! viprof-report <session-dir> [--classic] [--min <percent>] [--rows <n>] [--csv | --json]
//!
//!   --classic   render what stock opreport would show (anon ranges,
//!               symbol-less boot image) instead of the merged view
//!   --min  P    hide rows below P percent of the primary event (0.05)
//!   --rows N    keep at most N rows
//!   --csv       emit CSV instead of the aligned text table
//!   --json      emit JSON
//! ```

use oprofile::{opreport, ReportOptions, SampleDb};
use viprof::Viprof;

fn usage() -> ! {
    eprintln!(
        "usage: viprof-report <session-dir> [--classic] [--min <percent>] [--rows <n>] [--csv | --json]"
    );
    std::process::exit(2);
}

enum Format {
    Text,
    Csv,
    Json,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(dir) = args.next() else { usage() };
    let mut classic = false;
    let mut options = ReportOptions {
        min_primary_percent: 0.05,
        ..ReportOptions::default()
    };
    let mut format = Format::Text;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--classic" => classic = true,
            "--csv" => format = Format::Csv,
            "--json" => format = Format::Json,
            "--min" => {
                options.min_primary_percent = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--rows" => {
                options.max_rows = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            _ => usage(),
        }
    }

    let dir = std::path::PathBuf::from(dir);
    let kernel = match Viprof::import_session(&dir) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("viprof-report: {e}");
            std::process::exit(1);
        }
    };
    let Some(raw) = kernel.vfs.read(oprofile::session::SAMPLES_PATH) else {
        eprintln!(
            "viprof-report: no sample database at {} — did the session stop cleanly?",
            oprofile::session::SAMPLES_PATH
        );
        std::process::exit(1);
    };
    let db = match SampleDb::from_bytes(raw) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("viprof-report: corrupt sample database: {e}");
            std::process::exit(1);
        }
    };

    let (report, quality) = if classic {
        (opreport(&db, &kernel, &options), None)
    } else {
        match Viprof::report_with_quality(&db, &kernel, &options) {
            Ok((r, q)) => (r, Some(q)),
            Err(e) => {
                eprintln!("viprof-report: {e}");
                std::process::exit(1);
            }
        }
    };
    match format {
        Format::Text => {
            println!(
                "session {} — {} samples, {} dropped",
                dir.display(),
                db.total_samples(),
                db.dropped
            );
            print!("{}", report.render_text());
            if let Some(q) = quality {
                if q.stale_epoch > 0 || q.unresolved > 0 || q.quarantined_lines > 0 {
                    println!(
                        "NOTE: resolution quality — {} resolved, {} via stale-epoch fallback, \
                         {} unresolved; {} map lines quarantined, {} map files skipped",
                        q.resolved,
                        q.stale_epoch,
                        q.unresolved,
                        q.quarantined_lines,
                        q.skipped_map_files
                    );
                }
            }
            if db.dropped > 0 {
                let emitted = db.total_samples() + db.dropped;
                let pct = 100.0 * db.dropped as f64 / emitted as f64;
                println!("WARNING: {} samples dropped ({pct:.1}%)", db.dropped);
            }
        }
        Format::Csv => print!("{}", report.render_csv()),
        Format::Json => {
            println!(
                "{}",
                serde_json::to_string_pretty(&report).expect("report serializes")
            );
        }
    }
}
