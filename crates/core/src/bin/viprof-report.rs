//! `viprof-report` — offline post-processing CLI.
//!
//! Operates on a session directory exported by
//! `Viprof::export_session` (sample database, epoch code maps,
//! `RVM.map`, image/process metadata), the way `opreport` operates on
//! `/var/lib/oprofile` after `opcontrol --stop`.
//!
//! ```text
//! viprof-report <session-dir> [--classic] [--recover] [--telemetry] [--lineage] [--threads <n>] [--min <percent>] [--rows <n>] [--csv | --json]
//!
//!   --classic    render what stock opreport would show (anon ranges,
//!                symbol-less boot image) instead of the merged view
//!   --recover    tolerate integrity violations and replay the crash
//!                journals: rebuild code maps (and, if the sample db is
//!                missing or corrupt, the db itself) from journal records
//!   --telemetry  append the session's runtime telemetry (exported at
//!                /var/log/viprof/telemetry.json) and this resolve
//!                pass's own metrics to the text output
//!   --lineage    append the sample-lineage footer: every loss bucket
//!                (dropped/evicted/quarantined/blocked) broken down by
//!                the causal span where the loss occurred
//!   --threads N  resolve across N shards (default: available
//!                parallelism; output is bit-identical for every N)
//!   --min  P     hide rows below P percent of the primary event (0.05)
//!   --rows N     keep at most N rows
//!   --csv        emit CSV instead of the aligned text table
//!   --json       emit JSON
//! ```

use oprofile::{opreport, ReportOptions, SampleDb};
use viprof::{RecoveredDb, RecoveryReport, ReportSpec, Viprof};
use viprof_telemetry::TelemetrySnapshot;

fn usage() -> ! {
    eprintln!(
        "usage: viprof-report <session-dir> [--classic] [--recover] [--telemetry] \
         [--lineage] [--threads <n>] [--min <percent>] [--rows <n>] [--csv | --json]"
    );
    std::process::exit(2);
}

enum Format {
    Text,
    Csv,
    Json,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(dir) = args.next() else { usage() };
    let mut classic = false;
    let mut recover = false;
    let mut telemetry = false;
    let mut lineage = false;
    let mut threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut options = ReportOptions {
        min_primary_percent: 0.05,
        ..ReportOptions::default()
    };
    let mut format = Format::Text;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--classic" => classic = true,
            "--recover" => recover = true,
            "--telemetry" => telemetry = true,
            "--lineage" => lineage = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--csv" => format = Format::Csv,
            "--json" => format = Format::Json,
            "--min" => {
                options.min_primary_percent = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--rows" => {
                options.max_rows = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            _ => usage(),
        }
    }

    let dir = std::path::PathBuf::from(dir);
    let kernel = if recover {
        // Lenient: load what's there, warn per manifest violation, and
        // let the journal-replay pass repair what it can.
        match Viprof::import_session_lenient(&dir) {
            Ok((k, mismatches)) => {
                for m in &mismatches {
                    eprintln!("viprof-report: WARNING: {m}");
                }
                k
            }
            Err(e) => {
                eprintln!("viprof-report: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match Viprof::import_session(&dir) {
            Ok(k) => k,
            Err(e) => {
                eprintln!("viprof-report: {e} (try --recover)");
                std::process::exit(1);
            }
        }
    };
    let loaded = match kernel.vfs.read(oprofile::session::SAMPLES_PATH) {
        None => Err(format!(
            "no sample database at {}",
            oprofile::session::SAMPLES_PATH
        )),
        Some(raw) => {
            SampleDb::from_bytes(raw).map_err(|e| format!("corrupt sample database: {e}"))
        }
    };
    let mut rebuilt: Option<RecoveredDb> = None;
    let db = match loaded {
        Ok(db) => db,
        Err(why) if recover => {
            eprintln!("viprof-report: WARNING: {why}; replaying the batch journal");
            match viprof::recover_sample_db(&kernel.vfs) {
                Some(r) => {
                    let db = r.db.clone();
                    rebuilt = Some(r);
                    db
                }
                None => {
                    eprintln!("viprof-report: no sample journal either — nothing to rebuild");
                    std::process::exit(1);
                }
            }
        }
        Err(why) => {
            eprintln!(
                "viprof-report: {why} — did the session stop cleanly? (try --recover)"
            );
            std::process::exit(1);
        }
    };

    let mut resolve_telemetry: Option<TelemetrySnapshot> = None;
    let mut incarnations: Vec<viprof::IncarnationSummary> = Vec::new();
    let mut lineage_table: Option<viprof_telemetry::LineageTable> = None;
    let mut health = viprof_telemetry::HealthReport::default();
    let (report, quality, recovery) = if classic {
        (opreport(&db, &kernel, &options), None, None)
    } else {
        let spec = ReportSpec::default()
            .with_options(options.clone())
            .with_recover(recover)
            .threads(threads);
        match Viprof::make_report(&db, &kernel, &spec) {
            Ok(sr) => {
                let recovery = sr.recovery.map(|mut rec| {
                    if let Some(rb) = &rebuilt {
                        rec.db_rebuilt = true;
                        rec.sample_batches_replayed = rb.batches;
                        rec.bad_sample_batches = rb.bad_batches;
                        if rb.truncated_bytes > 0 {
                            rec.truncated_journals += 1;
                            rec.truncated_bytes += rb.truncated_bytes;
                        }
                    }
                    rec
                });
                resolve_telemetry = Some(sr.telemetry);
                incarnations = sr.incarnations;
                lineage_table = Some(sr.lineage);
                health = sr.health;
                (sr.lines, Some(sr.quality), recovery)
            }
            Err(e) => {
                eprintln!("viprof-report: {e}");
                std::process::exit(1);
            }
        }
    };
    match format {
        Format::Text => {
            println!(
                "session {} — {} samples, {} dropped",
                dir.display(),
                db.total_samples(),
                db.dropped
            );
            print!("{}", report.render_text());
            if let Some(q) = quality {
                if q.stale_epoch > 0 || q.unresolved > 0 || q.quarantined_lines > 0 {
                    println!(
                        "NOTE: resolution quality — {} resolved, {} via stale-epoch fallback, \
                         {} unresolved; {} map lines quarantined, {} map files skipped",
                        q.resolved,
                        q.stale_epoch,
                        q.unresolved,
                        q.quarantined_lines,
                        q.skipped_map_files
                    );
                }
                if q.quarantined > 0 {
                    println!(
                        "WARNING: {} sample(s) quarantined — a resolution shard \
                         panicked twice; they are counted but carry no symbols",
                        q.quarantined
                    );
                }
                if q.evicted > 0 {
                    println!(
                        "NOTE: {} sample(s) evicted at admission — the session ran \
                         with a bounded sample database",
                        q.evicted
                    );
                }
                if q.cross_incarnation_blocked > 0 {
                    println!(
                        "NOTE: {} sample(s) blocked at the incarnation boundary — \
                         stamped with a generation whose maps are gone while another \
                         incarnation of the pid has maps; attribution never crosses \
                         a restart",
                        q.cross_incarnation_blocked
                    );
                }
            }
            print_incarnation_footer(&incarnations);
            if let Some(rec) = &recovery {
                print_recovery(rec);
            }
            if db.dropped > 0 {
                let emitted = db.total_samples() + db.dropped;
                let pct = 100.0 * db.dropped as f64 / emitted as f64;
                println!("WARNING: {} samples dropped ({pct:.1}%)", db.dropped);
            }
            // HEALTH footer: rule findings over the session's exported
            // timeline. Silent on a clean run, like the other footers.
            if !health.is_healthy() {
                println!("== health ==");
                for f in &health.findings {
                    println!("{}", f.render_line());
                }
            }
            if lineage {
                match &lineage_table {
                    Some(table) => {
                        println!("== sample lineage ==");
                        print!("{}", table.render_text());
                    }
                    None => eprintln!(
                        "viprof-report: WARNING: --lineage has no effect with --classic"
                    ),
                }
            }
            if telemetry {
                match kernel.vfs.read(oprofile::TELEMETRY_PATH) {
                    Some(raw) => match std::str::from_utf8(raw)
                        .map_err(|e| e.to_string())
                        .and_then(TelemetrySnapshot::from_json)
                    {
                        Ok(snap) => {
                            println!("== runtime telemetry ({}) ==", oprofile::TELEMETRY_PATH);
                            print!("{}", snap.render_text());
                            print_governor_footer(&snap);
                        }
                        Err(e) => {
                            eprintln!("viprof-report: WARNING: unreadable runtime telemetry: {e}")
                        }
                    },
                    None => eprintln!(
                        "viprof-report: WARNING: session has no runtime telemetry \
                         (pre-telemetry export?)"
                    ),
                }
                if let Some(snap) = &resolve_telemetry {
                    println!("== resolve telemetry (this pass) ==");
                    print!("{}", snap.render_text());
                }
            }
        }
        Format::Csv => print!("{}", report.render_csv()),
        Format::Json => match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("viprof-report: cannot serialize report: {e}");
                std::process::exit(1);
            }
        },
    }
}

/// Per-incarnation footer: printed only when the session actually saw
/// process churn (more than one incarnation, or blocked samples) — a
/// steady one-VM run keeps the classic single-section output.
fn print_incarnation_footer(incarnations: &[viprof::IncarnationSummary]) {
    let blocked: u64 = incarnations.iter().map(|i| i.blocked).sum();
    if incarnations.len() <= 1 && blocked == 0 {
        return;
    }
    println!("== incarnations ==");
    for i in incarnations {
        println!(
            "pid {} gen {}: {} sample(s) — {} resolved, {} stale-epoch, \
             {} unresolved, {} blocked",
            i.pid, i.gen, i.samples, i.resolved, i.stale_epoch, i.unresolved, i.blocked
        );
    }
}

/// One human line per overload-governor outcome, after the raw metric
/// dump: what the closed loop actually *did* to the sampling rate.
fn print_governor_footer(snap: &TelemetrySnapshot) {
    use viprof_telemetry::names;
    let backoffs = snap.counter(names::GOVERNOR_BACKOFFS);
    let recoveries = snap.counter(names::GOVERNOR_RECOVERIES);
    let escalations = snap.counter(names::GOVERNOR_ESCALATIONS);
    let misses = snap.counter(names::DAEMON_DEADLINE_MISSES);
    if backoffs == 0 && recoveries == 0 && escalations == 0 && misses == 0 {
        return;
    }
    println!("== overload governor ==");
    println!(
        "governor: {backoffs} backoff(s), {recoveries} recovery step(s); \
         final period {} cycles",
        snap.gauge(names::GOVERNOR_PERIOD)
    );
    for e in snap.events_of(names::EVENT_GOVERNOR_RATE_CHANGE) {
        let from = e.fields.iter().find(|(k, _)| k == "from").map_or(0, |(_, v)| *v);
        let to = e.fields.iter().find(|(k, _)| k == "to").map_or(0, |(_, v)| *v);
        println!("governor: cycle {}: period {} -> {} ({})", e.cycles, from, to, e.detail);
    }
    if misses > 0 {
        println!(
            "governor: {misses} drain-deadline miss(es), {escalations} \
             escalation(s) to the supervisor"
        );
    }
}

fn print_recovery(rec: &RecoveryReport) {
    println!(
        "RECOVERY: {} map journal(s) scanned, {} record(s) replayed, \
         {} epoch(s) rebuilt, {} sample(s) salvaged",
        rec.journals_scanned, rec.records_replayed, rec.epochs_recovered, rec.samples_salvaged
    );
    if rec.truncated_journals > 0 {
        println!(
            "RECOVERY: {} journal(s) truncated at the last valid record ({} damaged bytes discarded)",
            rec.truncated_journals, rec.truncated_bytes
        );
    }
    if rec.db_rebuilt {
        println!(
            "RECOVERY: sample database rebuilt from {} batch record(s) ({} undecodable)",
            rec.sample_batches_replayed, rec.bad_sample_batches
        );
    }
}
