//! `viprof-trace` — causal trace inspection CLI.
//!
//! Reads the Chrome-trace JSON a session exported alongside its
//! samples (`/var/log/viprof/trace.json` inside the session
//! directory) and renders the causal span tree: which NMI window fed
//! which drain, which drain fed which journal batch, where the GC
//! pauses and agent map writes sat. With `--lineage` it re-runs the
//! resolve pass and prints the sample-lineage table — every loss
//! bucket broken down by the span where the loss occurred.
//!
//! ```text
//! viprof-trace --selftest
//! viprof-trace <session-dir> [--chrome] [--json] [--lineage] [--top <n>] [--threads <n>]
//!
//!   --chrome     print the canonical Chrome trace-event JSON
//!                (load it at chrome://tracing or ui.perfetto.dev)
//!   --json       print a structured span dump (ids, parents, layers,
//!                fields) instead of the human tree
//!   --lineage    re-resolve the exported database and print the
//!                sample-lineage table
//!   --top N      show the N span names with the largest total
//!                duration, each with its log2 duration histogram
//!   --threads N  shard count for the --lineage resolve pass (the
//!                output is bit-identical for every N)
//!   --selftest   run a fixed-seed synthetic session twice and check
//!                trace determinism (byte-identical Chrome JSON across
//!                runs and across resolve thread counts {1, 4}) plus
//!                lineage reconciliation; exits non-zero on failure
//! ```

use viprof::{ReportSpec, Viprof};
use viprof_telemetry::{log2_rows, TraceSnapshot};

fn usage() -> ! {
    eprintln!(
        "usage: viprof-trace --selftest | <session-dir> \
         [--chrome] [--json] [--lineage] [--top <n>] [--threads <n>]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(first) = args.next() else { usage() };
    if first == "--selftest" {
        selftest();
        return;
    }

    let dir = std::path::PathBuf::from(first);
    let mut chrome = false;
    let mut json = false;
    let mut lineage = false;
    let mut top = 0usize;
    let mut threads = 1usize;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--chrome" => chrome = true,
            "--json" => json = true,
            "--lineage" => lineage = true,
            "--top" => {
                top = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }

    let kernel = match Viprof::import_session(&dir) {
        Ok(kernel) => kernel,
        Err(e) => {
            eprintln!("viprof-trace: {e}");
            std::process::exit(1);
        }
    };
    let snap = match kernel.vfs.read(oprofile::TRACE_PATH) {
        Some(raw) => match std::str::from_utf8(raw)
            .map_err(|e| e.to_string())
            .and_then(|text| TraceSnapshot::from_chrome_json(text))
        {
            Ok(snap) => snap,
            Err(e) => {
                eprintln!("viprof-trace: corrupt trace export: {e}");
                std::process::exit(1);
            }
        },
        None => {
            eprintln!(
                "viprof-trace: no trace at {} (pre-tracing export?)",
                oprofile::TRACE_PATH
            );
            std::process::exit(1);
        }
    };

    if chrome {
        // Re-serialize: canonical form regardless of on-disk formatting.
        println!("{}", snap.to_chrome_json());
        return;
    }
    if json {
        println!("{}", span_dump_json(&snap));
        return;
    }

    println!("session {} — {} span(s)", dir.display(), snap.spans.len());
    for root in snap.roots() {
        print_tree(&snap, root.id, 0);
    }
    if top > 0 {
        print_top(&snap, top);
    }
    if lineage {
        let report = kernel
            .vfs
            .read(oprofile::SAMPLES_PATH)
            .ok_or_else(|| "no sample database in session".to_string())
            .and_then(|raw| {
                oprofile::SampleDb::from_bytes(raw)
                    .map_err(|e| format!("corrupt sample database: {e}"))
            })
            .and_then(|db| {
                let spec = ReportSpec::default().threads(threads);
                Viprof::make_report(&db, &kernel, &spec).map_err(|e| e.to_string())
            });
        match report {
            Ok(report) => {
                println!("== sample lineage ==");
                print!("{}", report.lineage.render_text());
            }
            Err(e) => {
                eprintln!("viprof-trace: cannot build lineage: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn print_tree(snap: &TraceSnapshot, id: u64, depth: usize) {
    let Some(s) = snap.span(id) else { return };
    let fields: Vec<String> = s.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!(
        "{:indent$}{} [{}] {}..{} ({} cycles) {}",
        "",
        s.name,
        s.layer.label(),
        s.begin,
        s.end,
        s.duration(),
        fields.join(" "),
        indent = depth * 2
    );
    for child in snap.children(id) {
        print_tree(snap, child.id, depth + 1);
    }
}

/// The N span names with the largest total duration, each with its
/// per-bucket log2 duration rows (formatting shared with
/// `viprof-stat --histograms` via [`log2_rows`]).
fn print_top(snap: &TraceSnapshot, top: usize) {
    let mut totals: Vec<(String, u64, u64)> = Vec::new();
    for s in &snap.spans {
        match totals.iter_mut().find(|(name, _, _)| *name == s.name) {
            Some(row) => {
                row.1 += s.duration();
                row.2 += 1;
            }
            None => totals.push((s.name.clone(), s.duration(), 1)),
        }
    }
    totals.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("== top {} span name(s) by total duration ==", top.min(totals.len()));
    for (name, total, count) in totals.iter().take(top) {
        println!("  {name} — {count} span(s), {total} cycles");
        for row in log2_rows(&snap.duration_buckets(Some(name))) {
            println!("    {row}");
        }
    }
}

fn span_dump_json(snap: &TraceSnapshot) -> String {
    let spans: Vec<serde_json::Value> = snap
        .spans
        .iter()
        .map(|s| {
            serde_json::json!({
                "id": s.id,
                "parent": s.parent,
                "trace": s.trace,
                "layer": s.layer.label(),
                "name": s.name,
                "begin": s.begin,
                "end": s.end,
                "fields": s.fields.iter().cloned().collect::<std::collections::BTreeMap<String, u64>>(),
            })
        })
        .collect();
    let value = serde_json::json!({ "spans": spans });
    serde_json::to_string_pretty(&value).expect("trace serializes")
}

/// Fixed-seed determinism smoke, run by `scripts/verify.sh`:
///
/// * two identical sessions export byte-identical Chrome trace JSON;
/// * the resolve pass's trace and lineage are byte-identical across
///   thread counts {1, 4};
/// * every lineage bucket total reconciles exactly with the
///   [`viprof::ResolutionQuality`] counts.
fn selftest() {
    use oprofile::OpConfig;
    use sim_cpu::{BlockExec, CpuMode};
    use sim_os::{Machine, MachineConfig};

    let run = || {
        let mut m = Machine::new(MachineConfig {
            seed: 2007,
            ..MachineConfig::default()
        });
        let pid = m.kernel.spawn("selftest");
        let vp = Viprof::builder()
            .config(OpConfig::time_at(10_000))
            .journal(true)
            .start(&mut m);
        m.exec(&BlockExec::compute(
            pid,
            CpuMode::User,
            (0x1000, 0x2000),
            1_000_000,
        ));
        let db = vp.stop(&mut m);
        (m, db)
    };

    let (m1, db) = run();
    let (m2, _) = run();
    let raw1 = m1
        .kernel
        .vfs
        .read(oprofile::TRACE_PATH)
        .expect("session exports a trace");
    let raw2 = m2.kernel.vfs.read(oprofile::TRACE_PATH).unwrap();
    assert_eq!(raw1, raw2, "fixed seed exports byte-identical trace JSON");
    let text = std::str::from_utf8(raw1).expect("trace is utf-8");
    let snap = TraceSnapshot::from_chrome_json(text).expect("trace parses");
    assert_eq!(snap.to_chrome_json(), text, "canonical JSON round-trips");
    assert_eq!(snap.roots().len(), 1, "one session root");
    assert!(
        snap.spans.iter().any(|s| s.parent != 0),
        "pipeline spans hang off the root"
    );

    let mut reports = Vec::new();
    for threads in [1usize, 4] {
        let spec = ReportSpec::default().threads(threads);
        let report = Viprof::make_report(&db, &m1.kernel, &spec).expect("resolve succeeds");
        let q = &report.quality;
        for (bucket, want) in [
            ("dropped", q.dropped),
            ("evicted", q.evicted),
            ("quarantined", q.quarantined),
            ("blocked", q.cross_incarnation_blocked),
        ] {
            assert_eq!(
                report.lineage.total(bucket),
                want,
                "lineage {bucket} reconciles at {threads} thread(s)"
            );
        }
        reports.push(report);
    }
    assert_eq!(
        reports[0].trace.to_chrome_json(),
        reports[1].trace.to_chrome_json(),
        "resolve trace is byte-identical across thread counts"
    );
    assert_eq!(reports[0].lineage, reports[1].lineage);
    println!(
        "viprof-trace: selftest ok ({} runtime span(s), {} resolve span(s), {} lineage row(s))",
        snap.spans.len(),
        reports[0].trace.spans.len(),
        reports[0].lineage.entries.len()
    );
}
