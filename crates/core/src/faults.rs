//! The full-pipeline fault plan: one seed, faults at every layer.
//!
//! [`FaultPlan`] is the façade a test (or chaos harness) configures:
//! it derives independent, deterministic sub-injectors for each layer
//! of the sampling pipeline —
//!
//! * **driver** (NMI path): overflow bursts, sample corruption,
//!   epoch-counter skew — [`oprofile::DriverFaults`];
//! * **daemon**: stalls and crash-and-restart with missed drain windows
//!   — [`oprofile::DaemonFaults`];
//! * **agent** (map writes): lost, torn, or garbled epoch code maps —
//!   [`MapFaults`] in this module.
//!
//! Each sub-injector gets its own seed mixed from the master seed, so
//! layers draw from independent streams yet the whole schedule replays
//! bit-for-bit from one number. The real-world analogues are the
//! documented OProfile/Jikes failure modes: a daemon too slow for its
//! buffer, `oprofiled` killed mid-run, a VM dying between map writes,
//! a map file truncated by a full disk.

use crate::agent::{MapFaultStats, MapFaults};
use oprofile::{DaemonFaults, DriverFaults, OpConfig, SupervisorConfig};
use sim_os::SplitMix64;

/// A seeded, whole-pipeline fault schedule. All knobs default to off;
/// a default plan injects nothing and perturbs nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    /// (probability, burst length) of NMI overflow bursts.
    pub overflow_burst: Option<(f64, u64)>,
    /// Probability a sample's PC is garbled in the handler.
    pub corrupt_rate: f64,
    /// Epochs the driver's counter view lags the agent's.
    pub epoch_skew: u64,
    /// Probability any daemon wakeup stalls (drains nothing).
    pub daemon_stall_rate: f64,
    /// (crash at wakeup N, wakeups down) for one crash-and-restart.
    pub daemon_crash: Option<(u64, u64)>,
    /// Probability a whole epoch map write is lost.
    pub map_lose_rate: f64,
    /// Probability a map write is torn (truncated mid-file).
    pub map_tear_rate: f64,
    /// Per-line probability of garbling within surviving maps.
    pub map_garble_rate: f64,
}

impl FaultPlan {
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            overflow_burst: None,
            corrupt_rate: 0.0,
            epoch_skew: 0,
            daemon_stall_rate: 0.0,
            daemon_crash: None,
            map_lose_rate: 0.0,
            map_tear_rate: 0.0,
            map_garble_rate: 0.0,
        }
    }

    pub fn with_overflow_bursts(mut self, rate: f64, len: u64) -> FaultPlan {
        self.overflow_burst = Some((rate, len));
        self
    }

    pub fn with_sample_corruption(mut self, rate: f64) -> FaultPlan {
        self.corrupt_rate = rate;
        self
    }

    pub fn with_epoch_skew(mut self, skew: u64) -> FaultPlan {
        self.epoch_skew = skew;
        self
    }

    pub fn with_daemon_stalls(mut self, rate: f64) -> FaultPlan {
        self.daemon_stall_rate = rate;
        self
    }

    pub fn with_daemon_crash(mut self, at_wakeup: u64, down_wakeups: u64) -> FaultPlan {
        self.daemon_crash = Some((at_wakeup, down_wakeups));
        self
    }

    pub fn with_lost_maps(mut self, rate: f64) -> FaultPlan {
        self.map_lose_rate = rate;
        self
    }

    pub fn with_torn_maps(mut self, rate: f64) -> FaultPlan {
        self.map_tear_rate = rate;
        self
    }

    pub fn with_garbled_lines(mut self, rate: f64) -> FaultPlan {
        self.map_garble_rate = rate;
        self
    }

    /// Independent per-layer seed derived from the master seed.
    fn sub_seed(&self, salt: u64) -> u64 {
        SplitMix64::new(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
    }

    /// The driver-layer injector, if any driver knob is set.
    pub fn driver_faults(&self) -> Option<DriverFaults> {
        if self.overflow_burst.is_none() && self.corrupt_rate == 0.0 && self.epoch_skew == 0 {
            return None;
        }
        let mut f = DriverFaults::new(self.sub_seed(1))
            .with_corruption(self.corrupt_rate)
            .with_epoch_skew(self.epoch_skew);
        if let Some((rate, len)) = self.overflow_burst {
            f = f.with_bursts(rate, len);
        }
        Some(f)
    }

    /// The daemon-layer injector, if any daemon knob is set.
    pub fn daemon_faults(&self) -> Option<DaemonFaults> {
        if self.daemon_stall_rate == 0.0 && self.daemon_crash.is_none() {
            return None;
        }
        let mut f = DaemonFaults::new(self.sub_seed(2)).with_stalls(self.daemon_stall_rate);
        if let Some((at, down)) = self.daemon_crash {
            f = f.with_crash(at, down);
        }
        Some(f)
    }

    /// The agent-layer (map write) injector, if any map knob is set.
    pub fn agent_faults(&self) -> Option<MapFaults> {
        if self.map_lose_rate == 0.0 && self.map_tear_rate == 0.0 && self.map_garble_rate == 0.0
        {
            return None;
        }
        Some(
            MapFaults::new(self.sub_seed(3))
                .with_lost(self.map_lose_rate)
                .with_torn(self.map_tear_rate)
                .with_garbled(self.map_garble_rate),
        )
    }

    /// Wire the kernel-side injectors into a profiler configuration.
    pub fn apply_to(&self, config: OpConfig) -> OpConfig {
        config.with_faults(self.driver_faults(), self.daemon_faults())
    }

    /// Supervisor configuration seeded from this plan (salt 4), so a
    /// supervised replay of the same plan jitters identically.
    pub fn supervisor_config(&self) -> SupervisorConfig {
        SupervisorConfig {
            seed: self.sub_seed(4),
            ..SupervisorConfig::default()
        }
    }
}

/// Aggregate fault counters across a plan's layers (what was actually
/// injected, for assertions and EXPERIMENTS tables).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    pub driver: oprofile::DriverFaultStats,
    pub daemon: oprofile::DaemonFaultStats,
    pub maps: MapFaultStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_builds_no_injectors() {
        let p = FaultPlan::new(42);
        assert!(p.driver_faults().is_none());
        assert!(p.daemon_faults().is_none());
        assert!(p.agent_faults().is_none());
        let config = p.apply_to(OpConfig::default());
        assert!(config.driver_faults.is_none());
        assert!(config.daemon_faults.is_none());
    }

    #[test]
    fn knobs_reach_the_right_layer() {
        let p = FaultPlan::new(1)
            .with_overflow_bursts(0.25, 4)
            .with_daemon_crash(3, 2)
            .with_torn_maps(0.5);
        let d = p.driver_faults().unwrap();
        assert_eq!((d.burst_rate, d.burst_len), (0.25, 4));
        let dm = p.daemon_faults().unwrap();
        assert_eq!(dm.crash_at_wakeup, Some(3));
        assert_eq!(dm.down_wakeups, 2);
        let a = p.agent_faults().unwrap();
        assert_eq!(a.tear_rate, 0.5);
        assert_eq!(a.lose_rate, 0.0);
    }

    #[test]
    fn supervisor_config_replays_per_seed() {
        let a = FaultPlan::new(9).supervisor_config();
        assert_eq!(a, FaultPlan::new(9).supervisor_config());
        assert_ne!(a.seed, FaultPlan::new(10).supervisor_config().seed);
        // Independent of the other layers' seed streams.
        let p = FaultPlan::new(9);
        assert_ne!(a.seed, p.sub_seed(2));
        assert_ne!(a.seed, p.sub_seed(3));
    }

    #[test]
    fn sub_seeds_differ_between_layers_but_replay() {
        let p = FaultPlan::new(7);
        assert_ne!(p.sub_seed(1), p.sub_seed(2));
        assert_ne!(p.sub_seed(2), p.sub_seed(3));
        let q = FaultPlan::new(7);
        assert_eq!(p.sub_seed(1), q.sub_seed(1));
        let r = FaultPlan::new(8);
        assert_ne!(p.sub_seed(1), r.sub_seed(1));
    }
}
