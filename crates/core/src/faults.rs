//! The full-pipeline fault plan: one seed, faults at every layer.
//!
//! [`FaultPlan`] is the façade a test (or chaos harness) configures:
//! it derives independent, deterministic sub-injectors for each layer
//! of the sampling pipeline —
//!
//! * **driver** (NMI path): overflow bursts, sample corruption,
//!   epoch-counter skew — [`oprofile::DriverFaults`];
//! * **daemon**: stalls and crash-and-restart with missed drain windows
//!   — [`oprofile::DaemonFaults`];
//! * **agent** (map writes): lost, torn, or garbled epoch code maps —
//!   [`MapFaults`] in this module.
//!
//! Each sub-injector gets its own seed mixed from the master seed, so
//! layers draw from independent streams yet the whole schedule replays
//! bit-for-bit from one number. The real-world analogues are the
//! documented OProfile/Jikes failure modes: a daemon too slow for its
//! buffer, `oprofiled` killed mid-run, a VM dying between map writes,
//! a map file truncated by a full disk.

use crate::agent::{MapFaultStats, MapFaults};
use oprofile::{DaemonFaults, DriverFaults, OpConfig, SupervisorConfig};
use sim_os::SplitMix64;

/// A seeded, whole-pipeline fault schedule. All knobs default to off;
/// a default plan injects nothing and perturbs nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    /// (probability, burst length) of NMI overflow bursts.
    pub overflow_burst: Option<(f64, u64)>,
    /// Probability a sample's PC is garbled in the handler.
    pub corrupt_rate: f64,
    /// Epochs the driver's counter view lags the agent's.
    pub epoch_skew: u64,
    /// Probability any daemon wakeup stalls (drains nothing).
    pub daemon_stall_rate: f64,
    /// (crash at wakeup N, wakeups down) for one crash-and-restart.
    pub daemon_crash: Option<(u64, u64)>,
    /// Probability a whole epoch map write is lost.
    pub map_lose_rate: f64,
    /// Probability a map write is torn (truncated mid-file).
    pub map_tear_rate: f64,
    /// Per-line probability of garbling within surviving maps.
    pub map_garble_rate: f64,
    /// Process-churn: kill and restart the profiled VM this many times
    /// mid-run, at seeded points of the workload (salt 5).
    pub vm_restarts: u32,
    /// Process-churn: between a kill and its restart, spawn-and-exit a
    /// decoy process so the LIFO pid allocator hands the successor VM
    /// its predecessor's pid — the worst-case reuse collision.
    pub pid_reuse_collision: bool,
}

impl FaultPlan {
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            overflow_burst: None,
            corrupt_rate: 0.0,
            epoch_skew: 0,
            daemon_stall_rate: 0.0,
            daemon_crash: None,
            map_lose_rate: 0.0,
            map_tear_rate: 0.0,
            map_garble_rate: 0.0,
            vm_restarts: 0,
            pid_reuse_collision: false,
        }
    }

    pub fn with_overflow_bursts(mut self, rate: f64, len: u64) -> FaultPlan {
        self.overflow_burst = Some((rate, len));
        self
    }

    pub fn with_sample_corruption(mut self, rate: f64) -> FaultPlan {
        self.corrupt_rate = rate;
        self
    }

    pub fn with_epoch_skew(mut self, skew: u64) -> FaultPlan {
        self.epoch_skew = skew;
        self
    }

    pub fn with_daemon_stalls(mut self, rate: f64) -> FaultPlan {
        self.daemon_stall_rate = rate;
        self
    }

    pub fn with_daemon_crash(mut self, at_wakeup: u64, down_wakeups: u64) -> FaultPlan {
        self.daemon_crash = Some((at_wakeup, down_wakeups));
        self
    }

    pub fn with_lost_maps(mut self, rate: f64) -> FaultPlan {
        self.map_lose_rate = rate;
        self
    }

    pub fn with_torn_maps(mut self, rate: f64) -> FaultPlan {
        self.map_tear_rate = rate;
        self
    }

    pub fn with_garbled_lines(mut self, rate: f64) -> FaultPlan {
        self.map_garble_rate = rate;
        self
    }

    pub fn with_vm_restarts(mut self, restarts: u32) -> FaultPlan {
        self.vm_restarts = restarts;
        self
    }

    pub fn with_pid_reuse_collision(mut self) -> FaultPlan {
        self.pid_reuse_collision = true;
        self
    }

    /// Independent per-layer seed derived from the master seed.
    fn sub_seed(&self, salt: u64) -> u64 {
        SplitMix64::new(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
    }

    /// The driver-layer injector, if any driver knob is set.
    pub fn driver_faults(&self) -> Option<DriverFaults> {
        if self.overflow_burst.is_none() && self.corrupt_rate == 0.0 && self.epoch_skew == 0 {
            return None;
        }
        let mut f = DriverFaults::new(self.sub_seed(1))
            .with_corruption(self.corrupt_rate)
            .with_epoch_skew(self.epoch_skew);
        if let Some((rate, len)) = self.overflow_burst {
            f = f.with_bursts(rate, len);
        }
        Some(f)
    }

    /// The daemon-layer injector, if any daemon knob is set.
    pub fn daemon_faults(&self) -> Option<DaemonFaults> {
        if self.daemon_stall_rate == 0.0 && self.daemon_crash.is_none() {
            return None;
        }
        let mut f = DaemonFaults::new(self.sub_seed(2)).with_stalls(self.daemon_stall_rate);
        if let Some((at, down)) = self.daemon_crash {
            f = f.with_crash(at, down);
        }
        Some(f)
    }

    /// The agent-layer (map write) injector, if any map knob is set.
    pub fn agent_faults(&self) -> Option<MapFaults> {
        if self.map_lose_rate == 0.0 && self.map_tear_rate == 0.0 && self.map_garble_rate == 0.0
        {
            return None;
        }
        Some(
            MapFaults::new(self.sub_seed(3))
                .with_lost(self.map_lose_rate)
                .with_torn(self.map_tear_rate)
                .with_garbled(self.map_garble_rate),
        )
    }

    /// Wire the kernel-side injectors into a profiler configuration.
    pub fn apply_to(&self, config: OpConfig) -> OpConfig {
        config.with_faults(self.driver_faults(), self.daemon_faults())
    }

    /// Supervisor configuration seeded from this plan (salt 4), so a
    /// supervised replay of the same plan jitters identically.
    pub fn supervisor_config(&self) -> SupervisorConfig {
        SupervisorConfig {
            seed: self.sub_seed(4),
            ..SupervisorConfig::default()
        }
    }

    /// The process-churn schedule (salt 5), if any churn knob is set:
    /// which of the workload's `slices` progress points the VM dies at.
    /// Restart points are distinct, sorted and strictly inside the run
    /// (never before the first slice or after the last), so the same
    /// plan kills at the same points on every replay.
    pub fn churn_schedule(&self, slices: u64) -> Option<ChurnSchedule> {
        if self.vm_restarts == 0 && !self.pid_reuse_collision {
            return None;
        }
        let mut rng = SplitMix64::new(self.sub_seed(5));
        let mut restarts: Vec<u64> = Vec::new();
        let span = slices.saturating_sub(1).max(1);
        let wanted = (self.vm_restarts as u64).min(span) as usize;
        while restarts.len() < wanted {
            let at = 1 + rng.next_u64() % span;
            if !restarts.contains(&at) {
                restarts.push(at);
            }
        }
        restarts.sort_unstable();
        Some(ChurnSchedule {
            restarts,
            reuse_collision: self.pid_reuse_collision,
        })
    }
}

/// A seeded process-churn schedule: where the profiled VM dies and is
/// respawned, and whether a decoy process forces the successor onto the
/// predecessor's pid.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnSchedule {
    /// Workload slice indices at which the running VM is killed and a
    /// fresh incarnation booted (sorted, distinct).
    pub restarts: Vec<u64>,
    /// Spawn-and-exit a decoy between kill and respawn so the LIFO
    /// allocator re-issues the dead VM's pid to the successor.
    pub reuse_collision: bool,
}

impl ChurnSchedule {
    /// Should the VM be restarted upon completing slice `slice`?
    pub fn restart_after(&self, slice: u64) -> bool {
        self.restarts.contains(&slice)
    }
}

/// Aggregate fault counters across a plan's layers (what was actually
/// injected, for assertions and EXPERIMENTS tables).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    pub driver: oprofile::DriverFaultStats,
    pub daemon: oprofile::DaemonFaultStats,
    pub maps: MapFaultStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_builds_no_injectors() {
        let p = FaultPlan::new(42);
        assert!(p.driver_faults().is_none());
        assert!(p.daemon_faults().is_none());
        assert!(p.agent_faults().is_none());
        let config = p.apply_to(OpConfig::default());
        assert!(config.driver_faults.is_none());
        assert!(config.daemon_faults.is_none());
    }

    #[test]
    fn knobs_reach_the_right_layer() {
        let p = FaultPlan::new(1)
            .with_overflow_bursts(0.25, 4)
            .with_daemon_crash(3, 2)
            .with_torn_maps(0.5);
        let d = p.driver_faults().unwrap();
        assert_eq!((d.burst_rate, d.burst_len), (0.25, 4));
        let dm = p.daemon_faults().unwrap();
        assert_eq!(dm.crash_at_wakeup, Some(3));
        assert_eq!(dm.down_wakeups, 2);
        let a = p.agent_faults().unwrap();
        assert_eq!(a.tear_rate, 0.5);
        assert_eq!(a.lose_rate, 0.0);
    }

    #[test]
    fn supervisor_config_replays_per_seed() {
        let a = FaultPlan::new(9).supervisor_config();
        assert_eq!(a, FaultPlan::new(9).supervisor_config());
        assert_ne!(a.seed, FaultPlan::new(10).supervisor_config().seed);
        // Independent of the other layers' seed streams.
        let p = FaultPlan::new(9);
        assert_ne!(a.seed, p.sub_seed(2));
        assert_ne!(a.seed, p.sub_seed(3));
    }

    #[test]
    fn churn_schedule_is_seeded_sorted_and_in_range() {
        assert!(FaultPlan::new(3).churn_schedule(8).is_none());
        let p = FaultPlan::new(3).with_vm_restarts(2).with_pid_reuse_collision();
        let s = p.churn_schedule(8).unwrap();
        assert_eq!(s.restarts.len(), 2);
        assert!(s.restarts.windows(2).all(|w| w[0] < w[1]), "{s:?}");
        assert!(s.restarts.iter().all(|&r| r >= 1 && r < 8), "{s:?}");
        assert!(s.reuse_collision);
        assert!(s.restart_after(s.restarts[0]));
        // Bit-identical replay from the same seed; different seed,
        // different schedule stream.
        assert_eq!(s, FaultPlan::new(3).with_vm_restarts(2).with_pid_reuse_collision().churn_schedule(8).unwrap());
        let other = FaultPlan::new(4).with_vm_restarts(2).churn_schedule(8).unwrap();
        assert!(!other.reuse_collision);
        // Collision-only plans still get a (restart-free) schedule.
        let c = FaultPlan::new(3).with_pid_reuse_collision().churn_schedule(8).unwrap();
        assert!(c.restarts.is_empty() && c.reuse_collision);
        // More restarts than interior slices clamps instead of spinning.
        let tiny = FaultPlan::new(3).with_vm_restarts(9).churn_schedule(3).unwrap();
        assert_eq!(tiny.restarts.len(), 2);
    }

    #[test]
    fn sub_seeds_differ_between_layers_but_replay() {
        let p = FaultPlan::new(7);
        assert_ne!(p.sub_seed(1), p.sub_seed(2));
        assert_ne!(p.sub_seed(2), p.sub_seed(3));
        let q = FaultPlan::new(7);
        assert_eq!(p.sub_seed(1), q.sub_seed(1));
        let r = FaultPlan::new(8);
        assert_ne!(p.sub_seed(1), r.sub_seed(1));
    }
}
