//! The Runtime Profiler extension: VIProf's change to OProfile's NMI
//! logging path.
//!
//! Paper §3: "the logging code will consult this information before
//! deciding to log a sample as being anonymous. Instead, if it is found
//! to fall within the boundaries of the VM's heap, the sample will be
//! logged as a JIT.App sample" — tagged with the current execution
//! epoch (§3.1). The consult itself is the cheap
//! `CostModel::nmi_jit_check_cycles` path; its dearness relative to the
//! replaced anon logging is what Figure 2's OProfile-vs-VIProf deltas
//! hinge on.

use crate::registry::SharedRegistry;
use oprofile::{AnonExtension, JitClaim};
use sim_cpu::{Addr, Pid};
use sim_os::Vma;

/// The anon-path extension installed into the OProfile driver.
pub struct ViprofExtension {
    registry: SharedRegistry,
    /// Daemon-side per-wakeup probing cost while any VM is registered
    /// ("a few other limited VM probing routines", §3).
    probe_cycles: u64,
}

impl ViprofExtension {
    pub fn new(registry: SharedRegistry, probe_cycles: u64) -> Self {
        ViprofExtension {
            registry,
            probe_cycles,
        }
    }
}

impl AnonExtension for ViprofExtension {
    fn classify(&mut self, pid: Pid, pc: Addr, _vma: &Vma) -> Option<JitClaim> {
        self.registry
            .read()
            .classify(pid, pc)
            .map(|(epoch, gen)| JitClaim { epoch, gen })
    }

    fn daemon_probe_cost(&self) -> u64 {
        if self.registry.read().is_empty() {
            0
        } else {
            self.probe_cycles
        }
    }

    fn admit(&self, pid: Pid, gen: u32) -> bool {
        self.registry.read().admit(pid, gen)
    }

    fn reap(&mut self, is_live: &mut dyn FnMut(Pid, u32) -> bool) -> u64 {
        self.registry.write().reap(is_live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::JitRegistry;

    #[test]
    fn claims_only_registered_ranges() {
        let reg = JitRegistry::shared();
        reg.write()
            .register(Pid(3), 0, (0x6000_0000, 0x6100_0000))
            .unwrap();
        reg.read().set_epoch(Pid(3), 2);
        let mut ext = ViprofExtension::new(reg, 1_000);
        let vma = Vma::anon(0x5000_0000, 0x7000_0000);
        assert_eq!(
            ext.classify(Pid(3), 0x6050_0000, &vma),
            Some(JitClaim { epoch: 2, gen: 0 })
        );
        assert_eq!(ext.classify(Pid(3), 0x6150_0000, &vma), None);
        assert_eq!(ext.classify(Pid(4), 0x6050_0000, &vma), None);
    }

    #[test]
    fn probe_cost_only_when_registered() {
        let reg = JitRegistry::shared();
        let ext = ViprofExtension::new(reg.clone(), 1_000);
        assert_eq!(ext.daemon_probe_cost(), 0);
        reg.write().register(Pid(1), 0, (0, 0x1000)).unwrap();
        assert_eq!(ext.daemon_probe_cost(), 1_000);
    }

    #[test]
    fn claims_carry_the_registrant_generation() {
        let reg = JitRegistry::shared();
        reg.write()
            .register(Pid(3), 4, (0x6000_0000, 0x6100_0000))
            .unwrap();
        let mut ext = ViprofExtension::new(reg.clone(), 1_000);
        let vma = Vma::anon(0x5000_0000, 0x7000_0000);
        assert_eq!(
            ext.classify(Pid(3), 0x6050_0000, &vma),
            Some(JitClaim { epoch: 0, gen: 4 })
        );
        assert!(ext.admit(Pid(3), 4));
        // Reap: the kernel says pid 3 is dead.
        assert_eq!(AnonExtension::reap(&mut ext, &mut |_, _| false), 1);
        assert!(!ext.admit(Pid(3), 4));
        assert_eq!(ext.classify(Pid(3), 0x6050_0000, &vma), None);
    }
}
