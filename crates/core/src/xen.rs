//! Xen / XenoProf extension (paper §5, future work).
//!
//! "As part of future work, we plan to integrate Xen virtualization
//! extensions into VIProf to integrate profiling of the Xen layer (via
//! XenoProf) as well as multiple concurrently executing software
//! stacks."
//!
//! The model: a hypervisor text image (`xen-syms`) whose scheduler and
//! hypercall paths consume (sampled!) cycles beneath the guests, a
//! domain table mapping guest processes to domains, and a XenoProf-style
//! post-processing pass that breaks a system-wide profile down by
//! domain — on top of which the normal VIProf resolution still applies
//! inside each guest, giving method-level attribution per stack.

use crate::resolve::ViprofResolver;
use oprofile::{SampleBucket, SampleDb, SampleOrigin};
use serde::Serialize;
use sim_cpu::{Addr, BlockExec, CpuMode, HwEvent, MemActivity, Pid};
use sim_os::loader::BIN_HINT;
use sim_os::{Image, Kernel, Loader, MachineCtx, MachineService, Symbol};

/// A guest domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct DomainId(pub u16);

/// Which processes belong to which domain. Unassigned PIDs are
/// reported as dom0 (the control domain), like XenoProf's "passive"
/// attribution.
#[derive(Debug, Default, Clone)]
pub struct DomainTable {
    names: Vec<String>,
    assignments: Vec<(Pid, DomainId)>,
}

impl DomainTable {
    /// Create with dom0 preregistered.
    pub fn new() -> DomainTable {
        let mut t = DomainTable::default();
        let dom0 = t.register("Domain-0");
        debug_assert_eq!(dom0, DomainId(0));
        t
    }

    pub fn register(&mut self, name: impl Into<String>) -> DomainId {
        self.names.push(name.into());
        DomainId(self.names.len() as u16 - 1)
    }

    pub fn assign(&mut self, pid: Pid, domain: DomainId) {
        assert!((domain.0 as usize) < self.names.len(), "unknown domain");
        self.assignments.retain(|(p, _)| *p != pid);
        self.assignments.push((pid, domain));
    }

    /// Domain of a PID (dom0 when unassigned).
    pub fn domain_of(&self, pid: Pid) -> DomainId {
        self.assignments
            .iter()
            .find(|(p, _)| *p == pid)
            .map(|(_, d)| *d)
            .unwrap_or(DomainId(0))
    }

    pub fn name(&self, d: DomainId) -> &str {
        &self.names[d.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Hypervisor text symbols (roughly XenoProf's hot xen-syms rows).
const XEN_SYMBOLS: &[(&str, u64, u64)] = &[
    ("hypercall", 0x0000, 0x1000),
    ("schedule_vcpu", 0x1000, 0x1000),
    ("evtchn_send", 0x2000, 0x0800),
    ("grant_table_op", 0x2800, 0x0800),
    ("flush_tlb_domain", 0x3000, 0x0800),
];

/// The hypervisor: a `xen-syms` image plus the pseudo-process its
/// cycles are charged to.
#[derive(Debug, Clone, Copy)]
pub struct Hypervisor {
    pub pid: Pid,
    base: Addr,
}

impl Hypervisor {
    /// Map `xen-syms` and spawn the hypervisor context.
    pub fn install(kernel: &mut Kernel) -> Hypervisor {
        let image = match kernel.images.find_by_name("xen-syms") {
            Some(id) => id,
            None => kernel.images.insert(
                Image::new("xen-syms", 0x4000).with_symbols(
                    XEN_SYMBOLS.iter().map(|(n, o, s)| Symbol::new(*n, *o, *s)),
                ),
            ),
        };
        let pid = kernel.spawn("xen");
        let base = Loader::load_image(kernel, pid, image, BIN_HINT);
        Hypervisor { pid, base }
    }

    /// PC range of a hypervisor symbol.
    pub fn range(&self, name: &str) -> (Addr, Addr) {
        let (_, off, size) = XEN_SYMBOLS
            .iter()
            .find(|(n, _, _)| *n == name)
            .unwrap_or_else(|| panic!("unknown xen symbol {name}"));
        (self.base + off, self.base + off + size)
    }
}

/// Scheduler service: every quantum the hypervisor context-switches
/// between domains (consuming sampled cycles in `schedule_vcpu` and,
/// periodically, `flush_tlb_domain`).
pub struct XenScheduler {
    hv: Hypervisor,
    quantum_cycles: u64,
    next_switch: u64,
    switch_cost: u64,
    pub switches: u64,
}

impl XenScheduler {
    pub fn new(hv: Hypervisor, quantum_cycles: u64) -> XenScheduler {
        XenScheduler {
            hv,
            quantum_cycles,
            next_switch: quantum_cycles,
            switch_cost: 9_000, // save/restore vcpu, update timers
            switches: 0,
        }
    }
}

impl MachineService for XenScheduler {
    fn poll(&mut self, ctx: &mut MachineCtx<'_>) {
        let now = ctx.cpu.clock.cycles();
        if now < self.next_switch {
            return;
        }
        while self.next_switch <= now {
            self.next_switch += self.quantum_cycles;
        }
        self.switches += 1;
        let range = if self.switches % 8 == 0 {
            self.hv.range("flush_tlb_domain")
        } else {
            self.hv.range("schedule_vcpu")
        };
        ctx.exec(&BlockExec {
            pid: self.hv.pid,
            mode: CpuMode::User,
            pc_range: range,
            cycles: self.switch_cost,
            instructions: self.switch_cost,
            branches: self.switch_cost / 32,
            mem: MemActivity::None,
        });
    }
}

/// One row of the XenoProf-style per-domain breakdown.
#[derive(Debug, Clone, Serialize)]
pub struct DomainRow {
    pub domain: String,
    pub samples: u64,
    pub percent: f64,
}

/// Break a system-wide profile down by domain for `event`.
/// Kernel-text samples are charged to dom0 (the driver domain runs the
/// kernel in this single-kernel model); hypervisor samples to the
/// `xen` pseudo-process's domain (assign it one, or they land in dom0).
pub fn domain_breakdown(db: &SampleDb, table: &DomainTable, event: HwEvent) -> Vec<DomainRow> {
    let mut counts = vec![0u64; table.len()];
    let total = db.total(event).max(1);
    for (bucket, count) in db.iter() {
        if bucket.event != event {
            continue;
        }
        let pid = bucket_pid(bucket);
        let dom = pid.map(|p| table.domain_of(p)).unwrap_or(DomainId(0));
        counts[dom.0 as usize] += count;
    }
    let mut rows: Vec<DomainRow> = counts
        .into_iter()
        .enumerate()
        .map(|(i, samples)| DomainRow {
            domain: table.name(DomainId(i as u16)).to_string(),
            samples,
            percent: 100.0 * samples as f64 / total as f64,
        })
        .collect();
    rows.sort_by(|a, b| b.samples.cmp(&a.samples));
    rows
}

/// The PID a bucket is attributable to, when it has one. Image-backed
/// samples carry no PID in the bucket (OProfile aggregates them by
/// image), so they go to dom0 — mirroring XenoProf's coarse handling of
/// shared text.
fn bucket_pid(bucket: &SampleBucket) -> Option<Pid> {
    match bucket.origin {
        SampleOrigin::Anon { pid, .. } | SampleOrigin::JitApp { pid, .. } => Some(pid),
        SampleOrigin::Image(_) | SampleOrigin::Unknown => None,
    }
}

/// Per-domain *method-level* profile: the VIProf resolution applied to
/// one domain's JIT samples (the "vertically integrated, per stack"
/// view of §5).
pub fn domain_jit_profile(
    db: &SampleDb,
    kernel: &Kernel,
    resolver: &ViprofResolver,
    table: &DomainTable,
    domain: DomainId,
    event: HwEvent,
) -> Vec<(String, u64)> {
    let mut counts: std::collections::HashMap<String, u64> = Default::default();
    for (bucket, count) in db.iter() {
        if bucket.event != event {
            continue;
        }
        let Some(pid) = bucket_pid(bucket) else {
            continue;
        };
        if table.domain_of(pid) != domain {
            continue;
        }
        let (_, symbol) = resolver.label(bucket, kernel);
        *counts.entry(symbol).or_insert(0) += count;
    }
    let mut rows: Vec<(String, u64)> = counts.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use oprofile::SampleBucket;

    fn bucket(pid: u32, addr: u64) -> SampleBucket {
        SampleBucket {
            origin: SampleOrigin::JitApp { pid: Pid(pid), gen: 0 },
            event: HwEvent::Cycles,
            addr,
            epoch: 0,
        }
    }

    #[test]
    fn domain_table_assigns_and_defaults_to_dom0() {
        let mut t = DomainTable::new();
        let dom1 = t.register("guest-a");
        t.assign(Pid(5), dom1);
        assert_eq!(t.domain_of(Pid(5)), dom1);
        assert_eq!(t.domain_of(Pid(99)), DomainId(0));
        assert_eq!(t.name(dom1), "guest-a");
        // Reassignment replaces.
        let dom2 = t.register("guest-b");
        t.assign(Pid(5), dom2);
        assert_eq!(t.domain_of(Pid(5)), dom2);
    }

    #[test]
    fn breakdown_groups_by_domain() {
        let mut t = DomainTable::new();
        let a = t.register("guest-a");
        let b = t.register("guest-b");
        t.assign(Pid(10), a);
        t.assign(Pid(20), b);
        let mut db = SampleDb::new();
        db.add(bucket(10, 0x100), 60);
        db.add(bucket(20, 0x200), 30);
        db.add(bucket(33, 0x300), 10); // unassigned → dom0
        let rows = domain_breakdown(&db, &t, HwEvent::Cycles);
        assert_eq!(rows[0].domain, "guest-a");
        assert_eq!(rows[0].samples, 60);
        assert!((rows[0].percent - 60.0).abs() < 1e-9);
        assert_eq!(rows[1].domain, "guest-b");
        assert_eq!(rows[2].domain, "Domain-0");
        assert_eq!(rows[2].samples, 10);
    }

    #[test]
    fn hypervisor_installs_and_resolves() {
        let mut k = Kernel::new();
        let hv = Hypervisor::install(&mut k);
        let (s, _) = hv.range("schedule_vcpu");
        let (img, sym) = k.symbolize(hv.pid, s, CpuMode::User).unwrap();
        assert_eq!((img.as_str(), sym.as_str()), ("xen-syms", "schedule_vcpu"));
    }

    #[test]
    fn scheduler_injects_hypervisor_cycles() {
        use sim_os::{Machine, MachineConfig};
        let mut m = Machine::new(MachineConfig::default());
        let hv = Hypervisor::install(&mut m.kernel);
        m.add_service(Box::new(XenScheduler::new(hv, 1_000_000)));
        let app = m.kernel.spawn("guest");
        for _ in 0..10 {
            m.exec(&BlockExec::compute(
                app,
                CpuMode::User,
                (0x1000, 0x2000),
                1_000_000,
            ));
        }
        // 10 quanta crossed → ~10 switches × 9000 cycles.
        assert!(m.cpu.clock.cycles() >= 10_000_000 + 9 * 9_000);
    }
}
