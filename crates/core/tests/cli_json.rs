//! CLI stdout contracts: with `--json` (and `--chrome`) each binary's
//! stdout must be *exactly one* machine-parseable JSON document — all
//! status, warnings, and progress go to stderr. Scripts pipe these
//! outputs straight into `jq`/`serde_json`, so a single stray banner
//! line is a regression.
//!
//! The fixture is a real fixed-config session exported to disk with
//! [`Viprof::export_session`], then inspected through the installed
//! binaries via `CARGO_BIN_EXE_*` (which is why this test lives in the
//! `viprof` package rather than the workspace-root suite).

use oprofile::OpConfig;
use sim_cpu::{BlockExec, CpuMode};
use sim_os::{Machine, MachineConfig};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use viprof::Viprof;

/// Build a small deterministic session and export it under a unique
/// temp directory. Returns the session dir (caller cleans up).
fn export_fixture(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("viprof-cli-json-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create fixture dir");

    let mut m = Machine::new(MachineConfig::default());
    let pid = m.kernel.spawn("cli-json");
    let vp = Viprof::builder()
        .config(OpConfig::time_at(10_000))
        .journal(true)
        .start(&mut m);
    m.exec(&BlockExec::compute(pid, CpuMode::User, (0x1000, 0x2000), 1_000_000));
    vp.stop(&mut m);
    Viprof::export_session(&mut m, &dir).expect("export session");
    dir
}

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"))
}

/// The contract under test: the whole of stdout is one JSON document.
/// `serde_json::from_str` rejects trailing garbage, so any banner,
/// warning, or second document printed to stdout fails here.
fn assert_stdout_is_one_json_document(out: &Output, what: &str) -> serde_json::Value {
    assert!(
        out.status.success(),
        "{what} failed ({}): stderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout.clone())
        .unwrap_or_else(|e| panic!("{what}: stdout is not utf-8: {e}"));
    serde_json::from_str(stdout.trim_end_matches('\n')).unwrap_or_else(|e| {
        panic!("{what}: stdout is not exactly one JSON document ({e}):\n{stdout}")
    })
}

#[test]
fn json_modes_emit_exactly_one_document_on_stdout() {
    let dir = export_fixture("purity");
    let dir_s = dir.to_str().expect("utf-8 temp path");

    // viprof-stat --json: the runtime telemetry snapshot.
    let out = run(env!("CARGO_BIN_EXE_viprof-stat"), &[dir_s, "--json"]);
    let v = assert_stdout_is_one_json_document(&out, "viprof-stat --json");
    assert!(v.get("counters").is_some(), "telemetry snapshot shape: {v}");

    // viprof-stat --health --json: the health report over the timeline.
    let out = run(env!("CARGO_BIN_EXE_viprof-stat"), &[dir_s, "--health", "--json"]);
    let v = assert_stdout_is_one_json_document(&out, "viprof-stat --health --json");
    assert!(v.get("findings").is_some(), "health report shape: {v}");

    // viprof-trace --json: the structured span dump.
    let out = run(env!("CARGO_BIN_EXE_viprof-trace"), &[dir_s, "--json"]);
    let v = assert_stdout_is_one_json_document(&out, "viprof-trace --json");
    assert!(v.get("spans").is_some(), "span dump shape: {v}");

    // viprof-trace --chrome: the canonical Chrome trace-event JSON.
    let out = run(env!("CARGO_BIN_EXE_viprof-trace"), &[dir_s, "--chrome"]);
    let v = assert_stdout_is_one_json_document(&out, "viprof-trace --chrome");
    assert!(v.get("traceEvents").is_some(), "chrome trace shape: {v}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_json_is_one_document_and_exit_codes_split_pass_fail() {
    let dir = export_fixture("diff");
    let telemetry = dir.join("var/log/viprof/telemetry.json");
    let timeline = dir.join("var/log/viprof/timeline.json");
    assert!(telemetry.is_file(), "export includes telemetry.json");
    assert!(timeline.is_file(), "export includes timeline.json");

    let diff = env!("CARGO_BIN_EXE_viprof-diff");
    let path = |p: &Path| p.to_str().expect("utf-8 temp path").to_owned();

    // Identical artifacts: exit 0 and a single JSON report on stdout.
    let out = run(diff, &[&path(&telemetry), &path(&telemetry), "--json"]);
    let v = assert_stdout_is_one_json_document(&out, "viprof-diff self vs self");
    assert_eq!(v["regressions"], 0, "self-diff reports no regressions: {v}");

    // Artifacts of different kinds: usage/loader error, exit 2, stdout
    // stays empty (errors belong to stderr even in JSON mode).
    let out = run(diff, &[&path(&telemetry), &path(&timeline), "--json"]);
    assert_eq!(out.status.code(), Some(2), "kind mismatch is a usage error");
    assert!(out.stdout.is_empty(), "error path writes nothing to stdout");
    assert!(!out.stderr.is_empty(), "error path explains itself on stderr");

    // A genuinely different candidate: exit 1 and still exactly one
    // JSON document describing the regression.
    let perturbed = dir.join("perturbed-telemetry.json");
    let text = std::fs::read_to_string(&telemetry).expect("read telemetry");
    let mut doc: serde_json::Value = serde_json::from_str(&text).expect("telemetry parses");
    let counters = doc["counters"].as_object_mut().expect("counters object");
    let (name, old) = counters
        .iter()
        .find(|(_, v)| v.as_u64().unwrap_or(0) > 0)
        .map(|(k, v)| (k.clone(), v.as_u64().unwrap()))
        .expect("some counter is nonzero");
    counters.insert(name, serde_json::json!(old + 1_000));
    std::fs::write(&perturbed, doc.to_string()).expect("write perturbed");

    let out = run(diff, &[&path(&telemetry), &path(&perturbed), "--json"]);
    assert_eq!(out.status.code(), Some(1), "regression exits 1");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let v: serde_json::Value = serde_json::from_str(stdout.trim_end_matches('\n'))
        .unwrap_or_else(|e| panic!("diff regression output is one JSON document ({e}):\n{stdout}"));
    assert!(v["regressions"].as_u64().unwrap_or(0) >= 1, "regression recorded: {v}");

    let _ = std::fs::remove_dir_all(&dir);
}
